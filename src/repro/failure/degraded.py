"""Degraded-mode operation, rebuild, and latent-error handling.

The paper's motivation is media recovery: redundant arrays survive a
disk failure and keep serving requests, at a performance cost the paper
mentions explicitly ("large arrays... have worse performance during
reconstruction following a disk failure", §4.2.1).  This module
implements that regime for the uncached organizations:

* **Degraded reads** — a read addressed to the failed disk is serviced
  by reading all the surviving blocks of its redundancy group (the
  other N-1 data blocks plus parity for the parity organizations, the
  mirror partner for mirrors) and XOR-reconstructing, so the response
  is the max over N concurrent accesses.
* **Degraded writes** — a write to a surviving disk updates parity
  normally; a write to the failed disk updates *only* the parity (read
  the other N-1 blocks, XOR with the new data, rewrite parity), so the
  data is recoverable even though its disk is gone.
* **Rebuild** — a background process sweeps the failed disk's blocks in
  physical order, reconstructing each onto a hot spare at background
  priority.  A watermark tracks progress: requests below it use the
  spare normally, requests above it take the degraded paths.  A
  completed full-range rebuild returns the array to healthy state.
* **Latent sector errors** — individual blocks injected as unreadable
  (:class:`~repro.failure.schedule.LatentError`).  A read that trips
  over one reconstructs from redundancy and rewrites the block
  (repair-on-access); a host write refreshes the medium and clears the
  error; a scrub pass (:class:`~repro.failure.scrub.ScrubProcess`)
  detects and repairs them proactively.  While the array is degraded a
  latent error on a surviving disk is *unrepairable* — its
  reconstruction group includes the failed disk — which is exactly why
  scrub interval bounds the data-loss exposure window.
* **Graceful degradation** — an access whose block can no longer be
  reconstructed (both mirror copies gone, a reconstruction source
  itself unreadable, any failed/latent block of the redundancy-free
  Base organization) is *counted as lost*, notified through the
  ``on_data_loss`` probe tap, and completes without the unrecoverable
  blocks instead of crashing the run.  The per-run
  :class:`~repro.failure.report.FailureReport` exposes the counts and
  ``raise_for_loss()`` turns them into a typed
  :class:`~repro.failure.errors.DataLossError`.

Controllers start *healthy* (``failed_disk=None``) and transition at
runtime via :meth:`_DegradedMixin.fail_disk` /
:meth:`_DegradedMixin.attach_spare` — that is what lets
:class:`~repro.failure.injector.FailureInjector` drive a timed scenario
against a normally-built system.  A failure-capable controller with no
injected faults produces the byte-identical event sequence of its plain
counterpart (pinned by the fingerprint tests).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.array.uncached import (
    UncachedBaseController,
    UncachedMirrorController,
    UncachedParityController,
)
from repro.des import AllOf, Event
from repro.disk.drive import Disk
from repro.disk.request import AccessKind, DiskRequest, Priority
from repro.failure.errors import FailureScheduleError
from repro.layout.common import Layout, PhysicalAddress, Run, WriteGroup, WriteMode
from repro.layout.mirror import MirrorLayout
from repro.layout.paritystripe import ParityStripingLayout
from repro.layout.striped import StripedParityLayout

__all__ = [
    "reconstruction_sources",
    "DegradedParityController",
    "DegradedMirrorController",
    "FailureAwareBaseController",
    "RebuildProcess",
    "failure_controller_factory",
]

#: Lost-access samples kept for DataLossError messages (counters are
#: always exact; only the per-event detail list is bounded).
_LOST_SAMPLES = 64


def reconstruction_sources(layout: Layout, disk: int, pblock: int) -> list[PhysicalAddress]:
    """Surviving blocks whose XOR reconstructs ``(disk, pblock)``.

    Works for both data and parity blocks of the parity layouts, and
    for mirror layouts (the single partner copy).
    """
    if isinstance(layout, MirrorLayout):
        return [PhysicalAddress(layout.mirror_of(disk), pblock)]

    if isinstance(layout, StripedParityLayout):
        # A row's data and parity all sit at the same physical block on
        # each of the N+1 disks: the sources are simply every other disk.
        return [
            PhysicalAddress(d, pblock) for d in range(layout.ndisks) if d != disk
        ]

    if isinstance(layout, ParityStripingLayout):
        area, off = divmod(pblock, layout.area_blocks)
        k = layout._data_area(area)
        parity_base = layout.parity_area_index * layout.area_blocks
        if k is None:
            # Parity block of group `disk`: XOR of all member data blocks.
            return [
                PhysicalAddress(d, layout._physical_area(kk) * layout.area_blocks + off)
                for d, kk in layout.members_of_group(disk, off)
            ]
        group = layout.group_of(disk, k, off)
        sources = [PhysicalAddress(group, parity_base + off)]
        for d, kk in layout.members_of_group(group, off):
            if d == disk:
                continue
            sources.append(
                PhysicalAddress(d, layout._physical_area(kk) * layout.area_blocks + off)
            )
        return sources

    raise TypeError(f"no redundancy to reconstruct from in {type(layout).__name__}")


class _DegradedMixin:
    """Failure state shared by the failure-capable controllers."""

    def _init_degraded(self, failed_disk: Optional[int], spare: bool) -> None:
        self.failed_disk: Optional[int] = None
        #: Physical blocks of the failed disk rebuilt so far (watermark);
        #: the spare serves addresses below it.
        self.rebuilt_upto = 0
        self.has_spare = False
        #: Sticky: the array was degraded at some point of the run (the
        #: parity checker's stream-level audit exempts such arrays even
        #: after a completed rebuild clears ``failed_disk``).
        self.ever_failed = False
        self.degraded_reads = 0
        self.degraded_writes = 0
        #: ``(disk, pblock) -> injection time`` of live latent errors.
        self.latent: dict[tuple[int, int], float] = {}
        self.latent_injected = 0
        self.latent_repaired_access = 0
        self.latent_repaired_write = 0
        self.latent_repaired_scrub = 0
        #: Repair latencies (repair time - injection time) in ms.
        self.latent_exposure_ms: list[float] = []
        #: Blocks the rebuild could not reconstruct (permanently lost
        #: until a host write refreshes them).
        self.lost_blocks: set[tuple[int, int]] = set()
        self.lost_reads = 0
        self.lost_writes = 0
        self.lost_events: list[tuple[float, str, int, int]] = []
        if failed_disk is not None:
            self.fail_disk(failed_disk)
            if spare:
                self.attach_spare()
        elif spare:
            raise FailureScheduleError("a spare requires a failed disk")

    def _invalidate_plans(self) -> None:
        """Advance the plan cache's failure-domain epoch.

        Plans are failure-independent today (degraded handling happens at
        execution time), but the contract of
        :class:`~repro.array.plancache.PlanCache` is that every
        failure-domain transition invalidates — insurance against
        planning ever consulting failure state.  ``getattr`` because
        ``_init_degraded`` may run transitions during construction.
        """
        plans = getattr(self, "plans", None)
        if plans is not None:
            plans.invalidate()

    # -- runtime failure transitions -----------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Disk *disk* dies now; subsequent planning takes degraded paths."""
        if not 0 <= disk < self.layout.ndisks:
            raise ValueError(f"failed disk {disk} out of range")
        if self.failed_disk is not None:
            raise FailureScheduleError(
                f"disk {self.failed_disk} is already failed; a second "
                f"concurrent failure is outside the single-failure model"
            )
        self.failed_disk = disk
        self.ever_failed = True
        self.has_spare = False
        self.rebuilt_upto = 0
        # A whole-disk failure subsumes latent errors on that disk; the
        # rebuild rewrites every block onto the fresh spare, so keeping
        # them would wrongly mark rebuilt blocks unreadable.
        for key in [k for k in self.latent if k[0] == disk]:
            del self.latent[key]
        self._invalidate_plans()

    def attach_spare(self) -> None:
        """A hot spare replaces the failed drive: same geometry, fresh arm."""
        if self.failed_disk is None:
            raise FailureScheduleError("a spare arrived but no disk is failed")
        if self.has_spare:
            raise FailureScheduleError("the failed disk already has a spare")
        old = self.disks[self.failed_disk]
        spare = Disk(old.env, old.geometry, old.seek_model, name=f"{old.name}.spare")
        # Keep instrumentation continuous: the spare inherits the probe
        # (monitor/tracer fanout) installed on the drive it replaces.
        spare.probe = old.probe
        self.disks[self.failed_disk] = spare
        self.has_spare = True
        self.rebuilt_upto = 0
        self._invalidate_plans()

    def rebuild_finished(self, total_blocks: int) -> None:
        """A full-range rebuild restores the array to healthy state."""
        if total_blocks >= self.layout.blocks_per_disk:
            self.failed_disk = None
            self._invalidate_plans()

    def inject_latent(self, disk: int, pblock: int) -> None:
        """Block ``(disk, pblock)`` silently becomes unreadable now."""
        if not 0 <= disk < self.layout.ndisks:
            raise FailureScheduleError(f"latent error disk {disk} out of range")
        if not 0 <= pblock < self.layout.blocks_per_disk:
            raise FailureScheduleError(f"latent error pblock {pblock} out of range")
        if disk == self.failed_disk:
            raise FailureScheduleError(
                f"latent error on disk {disk} is moot: the whole disk is failed"
            )
        self.latent[(disk, pblock)] = self.env.now
        self.latent_injected += 1

    # -- block state ----------------------------------------------------------
    def _is_failed(self, disk: int, pblock: int) -> bool:
        """True if the block's *drive* is gone (write planning: nothing
        can be written there)."""
        if disk != self.failed_disk:
            return False
        return not (self.has_spare and pblock < self.rebuilt_upto)

    def _is_unreadable(self, disk: int, pblock: int) -> bool:
        """True if a read of this block cannot return data directly:
        failed drive, latent sector error, or lost during rebuild."""
        if self._is_failed(disk, pblock):
            return True
        key = (disk, pblock)
        return key in self.latent or key in self.lost_blocks

    def _any_unreadable(self, disk: int, start: int, end: int) -> bool:
        if self.failed_disk is None and not self.latent and not self.lost_blocks:
            return False
        return any(self._is_unreadable(disk, pb) for pb in range(start, end))

    # -- accounting + probe taps ----------------------------------------------
    def _note_degraded(self, kind: str) -> None:
        """Count a degraded access and notify the validation tap."""
        if kind == "read":
            self.degraded_reads += 1
        else:
            self.degraded_writes += 1
        if self.probe is not None:
            self.probe.on_degraded(self, kind)

    def _note_lost(self, kind: str, disk: int, pblock: int) -> None:
        """Count an access to data no redundancy can reconstruct."""
        if kind == "read":
            self.lost_reads += 1
        else:
            self.lost_writes += 1
        if len(self.lost_events) < _LOST_SAMPLES:
            self.lost_events.append((self.env.now, kind, disk, pblock))
        if self.probe is not None:
            self.probe.on_data_loss(self, kind, disk, pblock)

    def _repair_latent(self, disk: int, pblock: int, how: str) -> None:
        """Clear a latent error and record its exposure window.

        ``how="write"`` means the host write itself refreshed the medium
        (no extra access); ``"access"``/``"scrub"`` submit a background
        rewrite of the reconstructed block.
        """
        injected_at = self.latent.pop((disk, pblock), None)
        if injected_at is None:
            return
        self.latent_exposure_ms.append(self.env.now - injected_at)
        if how == "access":
            self.latent_repaired_access += 1
        elif how == "scrub":
            self.latent_repaired_scrub += 1
        else:
            self.latent_repaired_write += 1
        if self.probe is not None:
            self.probe.on_latent_repair(self, disk, pblock, how)
        if how != "write":
            self.disks[disk].submit(
                DiskRequest(AccessKind.WRITE, pblock, 1, priority=Priority.DESTAGE)
            )

    # -- write-path hook -------------------------------------------------------
    def _clear_latent_run(self, disk: int, start: int, end: int) -> None:
        for pb in range(start, end):
            if self._is_failed(disk, pb):
                continue
            if (disk, pb) in self.latent:
                self._repair_latent(disk, pb, how="write")
            self.lost_blocks.discard((disk, pb))

    def _clear_group_latent(self, group: WriteGroup) -> None:
        for run in group.data_runs + group.parity_runs:
            self._clear_latent_run(run.disk, run.start, run.end)

    def _write_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        # A write refreshes the medium under it: clear covered latent
        # errors (and un-lose rebuild-lost blocks) before the plan runs.
        # The model treats the incoming host data as repairing the
        # sector even on the RMW path, where a real controller would
        # have to reconstruct the unreadable old data first.
        if self.latent or self.lost_blocks:
            self._clear_group_latent(group)
        yield from super()._write_group(group)


class DegradedParityController(_DegradedMixin, UncachedParityController):
    """An uncached parity array (RAID5/RAID4/Parity Striping) that can
    lose a disk, rebuild onto a hot spare, and carry latent errors."""

    def __init__(self, env, layout, disks, channel, config,
                 failed_disk: Optional[int] = None, spare: bool = False):
        super().__init__(env, layout, disks, channel, config)
        self._init_degraded(failed_disk, spare)

    # -- reads ---------------------------------------------------------------
    def _read_run(self, run: Run) -> Generator[Event, None, None]:
        # Split the run at the failure boundary block by block (runs are
        # short; requests are overwhelmingly single-block).
        if not self._any_unreadable(run.disk, run.start, run.end):
            yield from super()._read_run(run)
            return
        degraded = [
            pb for pb in range(run.start, run.end) if self._is_unreadable(run.disk, pb)
        ]
        self._note_degraded("read")
        procs = []
        healthy = [
            pb for pb in range(run.start, run.end)
            if not self._is_unreadable(run.disk, pb)
        ]
        if healthy:
            procs.append(
                self.env.process(
                    super()._read_run(Run(run.disk, healthy[0], len(healthy)))
                )
            )
        for pb in degraded:
            procs.append(self.env.process(self._reconstruct_read(run.disk, pb)))
        yield AllOf(self.env, procs)

    def _reconstruct_read(self, disk: int, pblock: int) -> Generator[Event, None, None]:
        """Read all surviving sources, then ship the block to the host."""
        if (disk, pblock) in self.lost_blocks:
            self._note_lost("read", disk, pblock)
            return
        sources = reconstruction_sources(self.layout, disk, pblock)
        if any(self._is_unreadable(src.disk, src.block) for src in sources):
            # A second unreadable block in the group: nothing left to
            # XOR from.  The request completes without the data.
            self._note_lost("read", disk, pblock)
            return
        nbuf = len(sources)
        yield from self.buffers.acquire(nbuf)
        try:
            reads = [
                self.disks[src.disk].submit(DiskRequest(AccessKind.READ, src.block))
                for src in sources
            ]
            yield AllOf(self.env, [r.done for r in reads])
            yield from self._channel_transfer(1)
        finally:
            self.buffers.release(nbuf)
        if (disk, pblock) in self.latent:
            # Repair-on-access: the block was just reconstructed, so
            # rewrite the medium in the background.
            self._repair_latent(disk, pblock, how="access")

    # -- writes ----------------------------------------------------------------
    def _group_buffers(self, group: WriteGroup) -> int:
        # The degraded update needs source-read buffers beyond the
        # group's nominal claim.  They MUST be part of the single atomic
        # upfront acquire in ``_write_group``: claiming them
        # incrementally inside ``_degraded_update`` (hold-and-wait) can
        # deadlock the pool once several degraded updates run
        # concurrently.
        base = super()._group_buffers(group)
        if self.failed_disk is None:
            return base
        extra = 0
        for run in group.data_runs:
            for pb in range(run.start, run.end):
                if self._is_failed(run.disk, pb):
                    sources = [
                        src
                        for src in reconstruction_sources(self.layout, run.disk, pb)
                        if not self.layout.is_parity_block(src.disk, src.block)
                    ]
                    # One buffer per source read, minus the data block's
                    # own buffer already counted in the base claim.
                    extra += max(len(sources) - 1, 0)
        return base + extra

    def _rmw(self, group: WriteGroup) -> Generator[Event, None, None]:
        touches_failed = any(
            self._is_failed(run.disk, pb)
            for run in group.data_runs + group.parity_runs
            for pb in range(run.start, run.end)
        )
        if not touches_failed:
            yield from super()._rmw(group)
            return
        self._note_degraded("write")
        yield from self._degraded_update(group)

    def _degraded_update(self, group: WriteGroup) -> Generator[Event, None, None]:
        """Update with a failed member in the redundancy group.

        Failed data block  -> read the other N-1 data blocks, then
        rewrite the parity with the reconstructed delta.
        Failed parity block -> write the data plainly (no parity left
        to maintain for that group).

        Buffers are NOT acquired here — ``_group_buffers`` already folded
        the source-read claims into ``_write_group``'s atomic acquire.
        """
        env = self.env
        done = []
        reads: list[DiskRequest] = []

        for run in group.data_runs:
            for pb in range(run.start, run.end):
                if self._is_failed(run.disk, pb):
                    # Read every surviving source except the parity (the
                    # parity is rewritten), then gate the parity write.
                    sources = [
                        src
                        for src in reconstruction_sources(self.layout, run.disk, pb)
                        if not self.layout.is_parity_block(src.disk, src.block)
                    ]
                    for src in sources:
                        reads.append(
                            self.disks[src.disk].submit(
                                DiskRequest(AccessKind.READ, src.block)
                            )
                        )
                else:
                    req = self.disks[run.disk].submit(
                        DiskRequest(AccessKind.RMW, pb, 1)
                    )
                    reads.append(req)
                    done.append(req.done)

        gate = AllOf(env, [r.read_complete for r in reads]) if reads else None
        for run in group.parity_runs:
            for pb in range(run.start, run.end):
                if self._is_failed(run.disk, pb):
                    continue  # parity disk itself failed: nothing to update
                req = self.disks[run.disk].submit(
                    DiskRequest(AccessKind.RMW, pb, 1, data_ready=gate)
                )
                done.append(req.done)

        if done:
            yield AllOf(env, done)
        elif reads:
            yield AllOf(env, [r.done for r in reads])


class DegradedMirrorController(_DegradedMixin, UncachedMirrorController):
    """A mirrored array that can lose a member and carry latent errors."""

    def __init__(self, env, layout, disks, channel, config,
                 failed_disk: Optional[int] = None, spare: bool = False):
        super().__init__(env, layout, disks, channel, config)
        self._init_degraded(failed_disk, spare)

    def _read_run(self, run: Run) -> Generator[Event, None, None]:
        if self.failed_disk is None and not self.latent and not self.lost_blocks:
            yield from super()._read_run(run)
            return
        partner = self.mlayout.mirror_of(run.disk)
        primary_bad = self._any_unreadable(run.disk, run.start, run.end)
        partner_bad = self._any_unreadable(partner, run.start, run.end)
        if primary_bad and partner_bad:
            # Both copies gone: mirrors have no third source.
            self._note_lost("read", run.disk, run.start)
            return
        yield from super()._read_run(run)
        if primary_bad or partner_bad:
            # Routing around an unreadable copy models a failed read
            # attempt retried on the partner: the failed attempt is what
            # *detects* the latent error, so repair it in the background
            # wherever the drive itself is still alive.
            for disk_idx in (run.disk, partner):
                for pb in range(run.start, run.end):
                    if (disk_idx, pb) in self.latent:
                        self._repair_latent(disk_idx, pb, how="access")

    def _pick_read_disk(self, run: Run) -> Disk:
        if self._any_unreadable(run.disk, run.start, run.end):
            self._note_degraded("read")
            return self.disks[self.mlayout.mirror_of(run.disk)]
        partner = self.mlayout.mirror_of(run.disk)
        if self._any_unreadable(partner, run.start, run.end):
            return self.disks[run.disk]
        return super()._pick_read_disk(run)

    def _clear_group_latent(self, group: WriteGroup) -> None:
        super()._clear_group_latent(group)
        # Mirror writes land on both copies; clear the partner's too.
        for run in group.data_runs:
            self._clear_latent_run(self.mlayout.mirror_of(run.disk), run.start, run.end)

    def _execute_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        assert group.mode is WriteMode.PLAIN
        done = []
        for run in group.data_runs:
            for disk_idx in (run.disk, self.mlayout.mirror_of(run.disk)):
                if self._is_failed(disk_idx, run.start):
                    self._note_degraded("write")
                    continue
                req = self.disks[disk_idx].submit(
                    DiskRequest(AccessKind.WRITE, run.start, run.nblocks)
                )
                done.append(req.done)
        yield AllOf(self.env, done)


class FailureAwareBaseController(_DegradedMixin, UncachedBaseController):
    """Independent disks under failure: no redundancy, so every access
    to a failed or latent block is lost data — counted and survived, the
    baseline the redundant organizations are measured against."""

    def __init__(self, env, layout, disks, channel, config,
                 failed_disk: Optional[int] = None, spare: bool = False):
        super().__init__(env, layout, disks, channel, config)
        self._init_degraded(failed_disk, spare)

    def attach_spare(self) -> None:
        raise FailureScheduleError(
            "the base organization has no redundancy to rebuild from; "
            "a spare cannot restore its data"
        )

    def _read_run(self, run: Run) -> Generator[Event, None, None]:
        if self._any_unreadable(run.disk, run.start, run.end):
            self._note_lost("read", run.disk, run.start)
            return
        yield from super()._read_run(run)

    def _execute_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        assert group.mode is WriteMode.PLAIN
        done = []
        for run in group.data_runs:
            if self._is_failed(run.disk, run.start):
                self._note_lost("write", run.disk, run.start)
                continue
            req = self.disks[run.disk].submit(
                DiskRequest(AccessKind.WRITE, run.start, run.nblocks)
            )
            done.append(req.done)
        if done:
            yield AllOf(self.env, done)


def failure_controller_factory(env, layout, disks, channel, config):
    """Build the failure-capable controller for *config*'s organization.

    Drop-in for :func:`repro.sim.system.build_system`'s default factory:
    with no injected faults the controllers behave (and fingerprint)
    identically to the plain uncached ones.
    """
    from repro.sim.config import Organization

    if config.cached:
        raise FailureScheduleError(
            "failure schedules support the uncached organizations only; "
            "run with cached=False"
        )
    org = config.organization
    if org is Organization.BASE:
        return FailureAwareBaseController(env, layout, disks, channel, config)
    if org is Organization.MIRROR:
        return DegradedMirrorController(env, layout, disks, channel, config)
    return DegradedParityController(env, layout, disks, channel, config)


class RebuildProcess:
    """Background reconstruction of the failed disk onto the spare.

    Sweeps the failed disk's physical blocks in ``chunk_blocks`` units:
    reads all surviving sources of the chunk at background priority,
    writes the reconstructed chunk to the spare, advances the
    controller's watermark.  ``delay_ms`` throttles between chunks to
    bound the interference with foreground traffic.

    A block whose reconstruction group contains another unreadable
    block — the classic latent-error-during-rebuild scenario — cannot
    be rebuilt: it is recorded in ``controller.lost_blocks`` and the
    sweep continues.  A full-range rebuild with no lost blocks returns
    the array to healthy state.
    """

    def __init__(
        self,
        controller,
        chunk_blocks: int = 6,
        delay_ms: float = 0.0,
        used_blocks: Optional[int] = None,
    ) -> None:
        if not controller.has_spare:
            raise ValueError("rebuild requires a spare disk")
        if chunk_blocks < 1:
            raise ValueError("chunk_blocks must be >= 1")
        self.controller = controller
        #: Recorded at start: the controller clears its own failed_disk
        #: when a full-range rebuild completes.
        self.failed_disk: int = controller.failed_disk
        self.chunk_blocks = chunk_blocks
        self.delay_ms = delay_ms
        self.total_blocks = (
            used_blocks
            if used_blocks is not None
            else controller.layout.blocks_per_disk
        )
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Blocks this rebuild could not reconstruct.
        self.lost_blocks = 0
        self.process = controller.env.process(self._run())

    @property
    def duration_ms(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def _run(self) -> Generator[Event, None, None]:
        ctrl = self.controller
        env = ctrl.env
        layout = ctrl.layout
        failed = ctrl.failed_disk
        spare = ctrl.disks[failed]
        self.started_at = env.now

        pblock = 0
        while pblock < self.total_blocks:
            chunk = min(self.chunk_blocks, self.total_blocks - pblock)
            # Gather the union of surviving source runs for the chunk.
            per_disk: dict[int, list[int]] = {}
            for pb in range(pblock, pblock + chunk):
                sources = reconstruction_sources(layout, failed, pb)
                if any(ctrl._is_unreadable(src.disk, src.block) for src in sources):
                    # A latent error on a source surfaced mid-rebuild:
                    # this block is unreconstructable.
                    ctrl.lost_blocks.add((failed, pb))
                    self.lost_blocks += 1
                    continue
                for src in sources:
                    per_disk.setdefault(src.disk, []).append(src.block)
            reads = []
            for disk_idx, blocks in per_disk.items():
                blocks.sort()
                start = blocks[0]
                reads.append(
                    ctrl.disks[disk_idx].submit(
                        DiskRequest(
                            AccessKind.READ,
                            start,
                            blocks[-1] - start + 1,
                            priority=Priority.DESTAGE,
                        )
                    )
                )
            if reads:
                yield AllOf(env, [r.done for r in reads])
                write = spare.submit(
                    DiskRequest(AccessKind.WRITE, pblock, chunk, priority=Priority.DESTAGE)
                )
                yield write.done
            pblock += chunk
            ctrl.rebuilt_upto = pblock
            if self.delay_ms > 0:
                yield env.timeout(self.delay_ms)
        self.finished_at = env.now
        ctrl.rebuild_finished(self.total_blocks)
