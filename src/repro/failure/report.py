"""Per-run failure-scenario outcome report.

:class:`FailureReport` is the harvest of one failure-injected run: what
was injected, what the rebuilds and scrub passes accomplished, how many
foreground accesses took degraded paths, and — the bottom line — whether
any data was actually lost.  It is a frozen value object attached to
:class:`~repro.sim.results.RunResult` as ``result.failures`` (excluded
from result equality, like the other instrumentation fields) and
serialized into golden snapshots by
:func:`repro.validate.golden.snapshot`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.failure.errors import DataLossError

__all__ = ["RebuildStats", "ScrubStats", "FailureReport", "build_report"]


@dataclass(frozen=True)
class RebuildStats:
    """Outcome of one array's rebuild onto its spare."""

    array: int
    failed_disk: int
    started_ms: float
    finished_ms: Optional[float]
    blocks: int
    lost_blocks: int

    @property
    def duration_ms(self) -> float:
        if self.finished_ms is None:
            return math.nan
        return self.finished_ms - self.started_ms

    def to_dict(self) -> dict:
        return {
            "array": self.array,
            "failed_disk": self.failed_disk,
            "started_ms": self.started_ms,
            "finished_ms": self.finished_ms,
            "blocks": self.blocks,
            "lost_blocks": self.lost_blocks,
        }


@dataclass(frozen=True)
class ScrubStats:
    """Outcome of one array's scrub passes."""

    array: int
    passes: int
    blocks_checked: int
    detected: int
    repaired: int
    unrepairable: int

    def to_dict(self) -> dict:
        return {
            "array": self.array,
            "passes": self.passes,
            "blocks_checked": self.blocks_checked,
            "detected": self.detected,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
        }


@dataclass(frozen=True)
class FailureReport:
    """Aggregated failure-scenario outcome of one run."""

    degraded_reads: int = 0
    degraded_writes: int = 0
    latent_injected: int = 0
    latent_repaired_access: int = 0
    latent_repaired_write: int = 0
    latent_repaired_scrub: int = 0
    latent_outstanding: int = 0
    #: Repair latencies (repair time - injection time), sorted, ms.
    exposure_ms: Tuple[float, ...] = ()
    lost_reads: int = 0
    lost_writes: int = 0
    #: Blocks no redundancy could reconstruct (still lost at run end).
    lost_block_count: int = 0
    #: First few lost accesses: ``(time_ms, kind, disk, pblock)``.
    lost_samples: Tuple[Tuple[float, str, int, int], ...] = ()
    rebuilds: Tuple[RebuildStats, ...] = ()
    scrubs: Tuple[ScrubStats, ...] = ()

    # -- derived -------------------------------------------------------------
    @property
    def latent_repaired(self) -> int:
        return (
            self.latent_repaired_access
            + self.latent_repaired_write
            + self.latent_repaired_scrub
        )

    @property
    def rebuild_duration_ms(self) -> float:
        """Duration of the first rebuild (NaN if none ran or none finished)."""
        for rb in self.rebuilds:
            return rb.duration_ms
        return math.nan

    @property
    def exposure_mean_ms(self) -> float:
        if not self.exposure_ms:
            return math.nan
        return sum(self.exposure_ms) / len(self.exposure_ms)

    @property
    def exposure_max_ms(self) -> float:
        if not self.exposure_ms:
            return math.nan
        return max(self.exposure_ms)

    @property
    def data_lost(self) -> bool:
        return bool(self.lost_reads or self.lost_writes or self.lost_block_count)

    def raise_for_loss(self) -> None:
        """Raise :class:`DataLossError` if the scenario destroyed data.

        The run itself always completes (lost accesses are counted, not
        raised mid-simulation); this is the opt-in hard-failure check.
        """
        if self.data_lost:
            raise DataLossError(
                self.lost_reads,
                self.lost_writes,
                self.lost_block_count,
                self.lost_samples,
            )

    def to_dict(self) -> dict:
        """Deterministic JSON-ready form for golden snapshots."""
        return {
            "degraded_reads": self.degraded_reads,
            "degraded_writes": self.degraded_writes,
            "latent_injected": self.latent_injected,
            "latent_repaired_access": self.latent_repaired_access,
            "latent_repaired_write": self.latent_repaired_write,
            "latent_repaired_scrub": self.latent_repaired_scrub,
            "latent_outstanding": self.latent_outstanding,
            "exposure_mean_ms": self.exposure_mean_ms,
            "exposure_max_ms": self.exposure_max_ms,
            "lost_reads": self.lost_reads,
            "lost_writes": self.lost_writes,
            "lost_block_count": self.lost_block_count,
            "rebuilds": [rb.to_dict() for rb in self.rebuilds],
            "scrubs": [sc.to_dict() for sc in self.scrubs],
        }


def build_report(controllers, rebuilds=(), scrubs=()) -> FailureReport:
    """Harvest the failure counters of *controllers* into one report.

    ``controllers`` may mix failure-capable and plain controllers (the
    plain ones contribute nothing); ``rebuilds`` / ``scrubs`` are the
    :class:`~repro.failure.degraded.RebuildProcess` /
    :class:`~repro.failure.scrub.ScrubProcess` instances the injector
    started, in array order.
    """
    degraded_reads = degraded_writes = 0
    latent_injected = rep_access = rep_write = rep_scrub = outstanding = 0
    exposure: list[float] = []
    lost_reads = lost_writes = lost_block_count = 0
    lost_samples: list[tuple[float, str, int, int]] = []
    for ctrl in controllers:
        degraded_reads += getattr(ctrl, "degraded_reads", 0)
        degraded_writes += getattr(ctrl, "degraded_writes", 0)
        latent_injected += getattr(ctrl, "latent_injected", 0)
        rep_access += getattr(ctrl, "latent_repaired_access", 0)
        rep_write += getattr(ctrl, "latent_repaired_write", 0)
        rep_scrub += getattr(ctrl, "latent_repaired_scrub", 0)
        outstanding += len(getattr(ctrl, "latent", ()))
        exposure.extend(getattr(ctrl, "latent_exposure_ms", ()))
        lost_reads += getattr(ctrl, "lost_reads", 0)
        lost_writes += getattr(ctrl, "lost_writes", 0)
        lost_block_count += len(getattr(ctrl, "lost_blocks", ()))
        lost_samples.extend(getattr(ctrl, "lost_events", ()))
    rebuild_stats = tuple(
        RebuildStats(
            array=i,
            failed_disk=rb.failed_disk,
            started_ms=rb.started_at if rb.started_at is not None else math.nan,
            finished_ms=rb.finished_at,
            blocks=rb.total_blocks,
            lost_blocks=rb.lost_blocks,
        )
        for i, rb in rebuilds
    )
    scrub_stats = tuple(
        ScrubStats(
            array=i,
            passes=sc.passes,
            blocks_checked=sc.blocks_checked,
            detected=sc.detected,
            repaired=sc.repaired,
            unrepairable=sc.unrepairable,
        )
        for i, sc in scrubs
    )
    return FailureReport(
        degraded_reads=degraded_reads,
        degraded_writes=degraded_writes,
        latent_injected=latent_injected,
        latent_repaired_access=rep_access,
        latent_repaired_write=rep_write,
        latent_repaired_scrub=rep_scrub,
        latent_outstanding=outstanding,
        exposure_ms=tuple(sorted(exposure)),
        lost_reads=lost_reads,
        lost_writes=lost_writes,
        lost_block_count=lost_block_count,
        lost_samples=tuple(lost_samples[:16]),
        rebuilds=rebuild_stats,
        scrubs=scrub_stats,
    )
