"""Driving a failure schedule against a built system.

The :class:`FailureInjector` is the bridge between the declarative
:class:`~repro.failure.schedule.FailureSchedule` and the DES: it
validates the schedule against the actual system (disk/array/block
ranges, organization capabilities), then runs a single timeline process
that applies each event at its scheduled time through the ordinary
kernel event hooks — a :class:`~repro.des.Timeout` per event, controller
state transitions at fire time.  No special kernel support: failure
injection is just another deterministic process in the event heap.

Determinism: :func:`~repro.sim.runner.run_trace` creates the injector
*before* the trace source process, so events scheduled for the same
instant as a request arrival are applied first (lower sequence number) —
a failure at t=0 is visible to the very first request, every run,
serial or parallel.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.des import Environment, Event
from repro.failure.degraded import RebuildProcess
from repro.failure.errors import FailureScheduleError
from repro.failure.schedule import (
    DiskFailure,
    FailureSchedule,
    LatentError,
    SpareArrival,
)
from repro.failure.scrub import ScrubProcess

__all__ = ["FailureInjector"]


class FailureInjector:
    """Applies *schedule* to *system*'s controllers at the right times."""

    def __init__(self, env: Environment, system, schedule: FailureSchedule) -> None:
        self.env = env
        self.system = system
        self.schedule = schedule
        #: ``(array_index, RebuildProcess)`` in start order.
        self.rebuilds: list[tuple[int, RebuildProcess]] = []
        #: ``(array_index, ScrubProcess)`` in array order.
        self.scrubs: list[tuple[int, ScrubProcess]] = []
        self._validate()
        self._timeline = env.process(self._run_timeline())
        if schedule.scrub is not None:
            for i, ctrl in enumerate(system.controllers):
                self.scrubs.append((i, ScrubProcess(ctrl, schedule.scrub)))

    # -- system-dependent validation ------------------------------------------
    def _validate(self) -> None:
        controllers = self.system.controllers
        narrays = len(controllers)
        failures: dict[int, DiskFailure] = {}
        for ev in self.schedule.events:
            if ev.array >= narrays:
                raise FailureScheduleError(
                    f"{type(ev).__name__} targets array {ev.array} but the "
                    f"system has {narrays} array(s)"
                )
            ctrl = controllers[ev.array]
            layout = ctrl.layout
            if isinstance(ev, DiskFailure):
                if ev.disk >= layout.ndisks:
                    raise FailureScheduleError(
                        f"DiskFailure targets disk {ev.disk} but array "
                        f"{ev.array} has {layout.ndisks} disks"
                    )
                failures[ev.array] = ev
            elif isinstance(ev, SpareArrival):
                if not hasattr(ctrl, "attach_spare"):
                    raise FailureScheduleError(
                        "SpareArrival requires a failure-capable controller"
                    )
                from repro.failure.degraded import FailureAwareBaseController

                if isinstance(ctrl, FailureAwareBaseController):
                    raise FailureScheduleError(
                        "the base organization has no redundancy to rebuild "
                        "from; remove the SpareArrival or pick a redundant "
                        "organization"
                    )
            elif isinstance(ev, LatentError):
                if ev.disk >= layout.ndisks:
                    raise FailureScheduleError(
                        f"LatentError targets disk {ev.disk} but array "
                        f"{ev.array} has {layout.ndisks} disks"
                    )
                if ev.pblock >= layout.blocks_per_disk:
                    raise FailureScheduleError(
                        f"LatentError targets pblock {ev.pblock} but disks "
                        f"have {layout.blocks_per_disk} blocks"
                    )
                failure = failures.get(ev.array)
                if (
                    failure is not None
                    and failure.disk == ev.disk
                    and failure.at_ms <= ev.at_ms
                ):
                    raise FailureScheduleError(
                        f"LatentError on disk {ev.disk} at {ev.at_ms:g} ms is "
                        f"moot: the whole disk fails at {failure.at_ms:g} ms"
                    )

    # -- the timeline ----------------------------------------------------------
    def _run_timeline(self) -> Generator[Event, None, None]:
        env = self.env
        controllers = self.system.controllers
        for ev in self.schedule.ordered_events():
            if ev.at_ms > env.now:
                yield env.timeout(ev.at_ms - env.now)
            ctrl = controllers[ev.array]
            if isinstance(ev, DiskFailure):
                ctrl.fail_disk(ev.disk)
            elif isinstance(ev, SpareArrival):
                ctrl.attach_spare()
                self.rebuilds.append(
                    (
                        ev.array,
                        RebuildProcess(
                            ctrl,
                            chunk_blocks=ev.rebuild_chunk_blocks,
                            delay_ms=ev.rebuild_delay_ms,
                            used_blocks=ev.rebuild_blocks,
                        ),
                    )
                )
            else:
                ctrl.inject_latent(ev.disk, ev.pblock)

    # -- post-trace drain -------------------------------------------------------
    def drain(self) -> None:
        """Run the clock past the foreground trace until the scenario is
        complete: all events applied, all started rebuilds finished, and
        every scrubber through ``min_passes`` full passes.

        ``env.run(until=...)`` on an already-processed event returns
        immediately, so draining an already-complete scenario is free.
        """
        env = self.env
        env.run(until=self._timeline)
        # A rebuild may only be *created* by a late SpareArrival the
        # timeline just applied, hence the second loop after the first.
        for _, rb in self.rebuilds:
            env.run(until=rb.process)
        policy = self.schedule.scrub
        if policy is not None and policy.min_passes > 0:
            for _, sc in self.scrubs:
                while sc.passes < policy.min_passes:
                    env.run(until=sc.pass_done)
