"""Declarative fault-injection schedules.

A :class:`FailureSchedule` is a frozen, picklable value object: a tuple
of timed events (disk failure, spare arrival, latent sector errors)
plus an optional periodic :class:`ScrubPolicy`.  Being a plain frozen
dataclass buys three properties the campaign engine depends on:

* **hashable / picklable** — a schedule rides inside a
  :class:`~repro.experiments.points.Point` override, crosses process
  boundaries to the parallel workers, and keys result-store entries;
* **deterministic repr** — the content hash of a point includes
  ``repr(schedule)``, so a degraded point can never alias a healthy
  point's memoized value (and two different schedules never alias each
  other);
* **statically validatable** — everything that can be checked without a
  built system is checked in ``__post_init__``; system-dependent checks
  (disk indexes vs the layout) happen in
  :class:`~repro.failure.injector.FailureInjector`.

Times are simulation milliseconds, disks are physical indexes within
one array, ``array`` selects the array when the system has several.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.failure.errors import FailureScheduleError

__all__ = [
    "DiskFailure",
    "SpareArrival",
    "LatentError",
    "ScrubPolicy",
    "FailureSchedule",
]


def _check_time(at_ms: float, what: str) -> None:
    if not (isinstance(at_ms, (int, float)) and at_ms >= 0.0 and at_ms == at_ms):
        raise FailureScheduleError(f"{what}: at_ms must be a finite time >= 0, got {at_ms!r}")


@dataclass(frozen=True)
class DiskFailure:
    """Disk ``disk`` of array ``array`` dies at ``at_ms``.

    In-flight accesses on the drive complete (the model does not tear
    down a seek mid-flight); every access *planned* after the event
    takes the degraded paths.
    """

    at_ms: float
    disk: int
    array: int = 0

    def __post_init__(self) -> None:
        _check_time(self.at_ms, "DiskFailure")
        if self.disk < 0 or self.array < 0:
            raise FailureScheduleError("DiskFailure: disk and array must be >= 0")


@dataclass(frozen=True)
class SpareArrival:
    """A hot spare replaces the failed disk of ``array`` at ``at_ms``
    and a background rebuild starts onto it.

    ``rebuild_delay_ms`` throttles between rebuild chunks (the
    rebuild-rate knob: 0 = rebuild at full speed, large = gentle);
    ``rebuild_blocks`` caps the swept range (rebuild only the active
    slice of a mostly-empty disk), ``None`` sweeps the whole disk.
    """

    at_ms: float
    array: int = 0
    rebuild_chunk_blocks: int = 6
    rebuild_delay_ms: float = 0.0
    rebuild_blocks: Optional[int] = None

    def __post_init__(self) -> None:
        _check_time(self.at_ms, "SpareArrival")
        if self.array < 0:
            raise FailureScheduleError("SpareArrival: array must be >= 0")
        if self.rebuild_chunk_blocks < 1:
            raise FailureScheduleError("SpareArrival: rebuild_chunk_blocks must be >= 1")
        if self.rebuild_delay_ms < 0:
            raise FailureScheduleError("SpareArrival: rebuild_delay_ms must be >= 0")
        if self.rebuild_blocks is not None and self.rebuild_blocks < 1:
            raise FailureScheduleError("SpareArrival: rebuild_blocks must be >= 1 or None")


@dataclass(frozen=True)
class LatentError:
    """Physical block ``pblock`` of ``disk`` becomes unreadable at
    ``at_ms`` — a latent sector error: undetected until something (a
    foreground read, the rebuild, a scrub pass) next touches the block.

    A write to the block rewrites the medium and clears the error.
    """

    at_ms: float
    disk: int
    pblock: int
    array: int = 0

    def __post_init__(self) -> None:
        _check_time(self.at_ms, "LatentError")
        if self.disk < 0 or self.pblock < 0 or self.array < 0:
            raise FailureScheduleError("LatentError: disk, pblock and array must be >= 0")


@dataclass(frozen=True)
class ScrubPolicy:
    """Periodic verify sweep over every array.

    Each pass reads ``max_blocks`` (or the whole disk) of every live
    disk in ``chunk_blocks`` units at background priority, detects
    latent errors and repairs them from redundancy where the group is
    intact.  The first pass starts at ``start_ms``; subsequent passes
    ``period_ms`` after the previous one finishes.  ``min_passes`` makes
    :func:`~repro.sim.runner.run_trace` keep the clock running after the
    foreground trace drains until that many passes completed — without
    it a short trace can end before the scrubber ever sweeps.
    """

    period_ms: float
    chunk_blocks: int = 48
    start_ms: float = 0.0
    max_blocks: Optional[int] = None
    min_passes: int = 0

    def __post_init__(self) -> None:
        if not self.period_ms > 0:
            raise FailureScheduleError("ScrubPolicy: period_ms must be > 0")
        if self.chunk_blocks < 1:
            raise FailureScheduleError("ScrubPolicy: chunk_blocks must be >= 1")
        _check_time(self.start_ms, "ScrubPolicy")
        if self.max_blocks is not None and self.max_blocks < 1:
            raise FailureScheduleError("ScrubPolicy: max_blocks must be >= 1 or None")
        if self.min_passes < 0:
            raise FailureScheduleError("ScrubPolicy: min_passes must be >= 0")


FailureEvent = Union[DiskFailure, SpareArrival, LatentError]


@dataclass(frozen=True)
class FailureSchedule:
    """The complete fault timeline of one run."""

    events: Tuple[FailureEvent, ...] = ()
    scrub: Optional[ScrubPolicy] = None

    def __post_init__(self) -> None:
        # Tolerate a list literal; store the canonical tuple.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        failures_per_array: dict[int, DiskFailure] = {}
        latent_seen: set[tuple[int, int, int]] = set()
        for ev in self.events:
            if not isinstance(ev, (DiskFailure, SpareArrival, LatentError)):
                raise FailureScheduleError(f"not a failure event: {ev!r}")
            if isinstance(ev, DiskFailure):
                if ev.array in failures_per_array:
                    raise FailureScheduleError(
                        f"array {ev.array}: at most one DiskFailure per array "
                        f"is supported (single-failure fault model)"
                    )
                failures_per_array[ev.array] = ev
            elif isinstance(ev, LatentError):
                key = (ev.array, ev.disk, ev.pblock)
                if key in latent_seen:
                    raise FailureScheduleError(
                        f"duplicate LatentError for array {ev.array} "
                        f"disk {ev.disk} pblock {ev.pblock}"
                    )
                latent_seen.add(key)
        for ev in self.events:
            if isinstance(ev, SpareArrival):
                failure = failures_per_array.get(ev.array)
                if failure is None:
                    raise FailureScheduleError(
                        f"SpareArrival for array {ev.array} without a DiskFailure"
                    )
                if ev.at_ms < failure.at_ms:
                    raise FailureScheduleError(
                        f"array {ev.array}: spare arrives at {ev.at_ms:g} ms, "
                        f"before the failure at {failure.at_ms:g} ms"
                    )

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing at all."""
        return not self.events and self.scrub is None

    def ordered_events(self) -> Tuple[FailureEvent, ...]:
        """Events in injection order: by time, schedule position breaking ties."""
        return tuple(
            ev for _, _, ev in sorted(
                (ev.at_ms, i, ev) for i, ev in enumerate(self.events)
            )
        )

    # -- convenience constructors -------------------------------------------
    @classmethod
    def single_failure(
        cls,
        at_ms: float = 0.0,
        disk: int = 0,
        array: int = 0,
        spare_after_ms: Optional[float] = None,
        rebuild_chunk_blocks: int = 6,
        rebuild_delay_ms: float = 0.0,
        rebuild_blocks: Optional[int] = None,
        scrub: Optional[ScrubPolicy] = None,
    ) -> "FailureSchedule":
        """One disk failure, optionally followed by a spare + rebuild."""
        events: list[FailureEvent] = [DiskFailure(at_ms=at_ms, disk=disk, array=array)]
        if spare_after_ms is not None:
            events.append(
                SpareArrival(
                    at_ms=at_ms + spare_after_ms,
                    array=array,
                    rebuild_chunk_blocks=rebuild_chunk_blocks,
                    rebuild_delay_ms=rebuild_delay_ms,
                    rebuild_blocks=rebuild_blocks,
                )
            )
        return cls(events=tuple(events), scrub=scrub)
