"""Disk queue scheduling disciplines.

The paper's simulator services each disk queue in arrival order, with the
*/PR* synchronization policies expressed as a higher queue priority for
parity accesses.  :class:`FCFSScheduler` implements exactly that (priority
classes, FIFO within a class).  :class:`SSTFScheduler` (shortest seek time
first within the top priority class) is provided as an extension used by
the ablation benchmarks.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Iterator, Optional

from repro.disk.request import DiskRequest

__all__ = ["DiskScheduler", "FCFSScheduler", "SSTFScheduler"]


class DiskScheduler(ABC):
    """Holds queued :class:`DiskRequest` items and picks the next one."""

    __slots__ = ()

    @abstractmethod
    def put(self, request: DiskRequest) -> None:
        """Enqueue a request."""

    @abstractmethod
    def pop(self, current_cylinder: int) -> DiskRequest:
        """Remove and return the next request to service.

        ``current_cylinder`` is the arm's position, for position-aware
        disciplines.  Must not be called on an empty queue.
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued requests."""

    @abstractmethod
    def __iter__(self) -> Iterator[DiskRequest]:
        """Iterate over queued requests (service order not guaranteed)."""

    def peek_priority(self) -> Optional[float]:
        """Priority of the most urgent queued request, or None if empty."""
        best: Optional[float] = None
        for req in self:
            if best is None or req.priority < best:
                best = req.priority
        return best


class FCFSScheduler(DiskScheduler):
    """Priority classes served lowest-value first, FIFO within a class."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, DiskRequest]] = []

    # put/pop run once per disk access on the simulator hot path; the
    # default-arg bindings skip the module-attribute lookups.
    def put(self, request: DiskRequest, _heappush=heapq.heappush) -> None:
        _heappush(self._heap, (request.priority, request.seq, request))

    def pop(self, current_cylinder: int, _heappop=heapq.heappop) -> DiskRequest:
        if not self._heap:
            raise IndexError("pop from empty disk queue")
        return _heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[DiskRequest]:
        return (entry[2] for entry in self._heap)


class SSTFScheduler(DiskScheduler):
    """Shortest-seek-time-first within the most urgent priority class.

    Starvation note: pure SSTF can starve far-away requests under load;
    this implementation confines the position choice to the best priority
    class, so synchronous traffic still pre-empts background destage
    writes deterministically.
    """

    __slots__ = ("_items", "_geometry")

    def __init__(self, geometry) -> None:
        self._items: list[DiskRequest] = []
        self._geometry = geometry

    def put(self, request: DiskRequest) -> None:
        self._items.append(request)

    def pop(self, current_cylinder: int) -> DiskRequest:
        if not self._items:
            raise IndexError("pop from empty disk queue")
        best_prio = min(req.priority for req in self._items)
        best_idx = -1
        best_key: Optional[tuple[int, int]] = None
        for i, req in enumerate(self._items):
            if req.priority != best_prio:
                continue
            dist = abs(self._geometry.cylinder_of(req.start_block) - current_cylinder)
            key = (dist, req.seq)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return self._items.pop(best_idx)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DiskRequest]:
        return iter(self._items)
