"""Disk drive model.

Implements the disk of Table 1 of the paper: a 5400 rpm drive with 1260
cylinders, 15 platters, 48 sectors of 512 bytes per track (~0.9 GB), an
11.2 ms average / 28 ms maximal seek, served through a per-disk request
queue with rotational-position-accurate timing.
"""

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.disk.request import AccessKind, DiskRequest
from repro.disk.scheduler import FCFSScheduler, SSTFScheduler, DiskScheduler
from repro.disk.drive import Disk

__all__ = [
    "AccessKind",
    "Disk",
    "DiskGeometry",
    "DiskRequest",
    "DiskScheduler",
    "FCFSScheduler",
    "SSTFScheduler",
    "SeekModel",
]
