"""Disk request descriptors.

A :class:`DiskRequest` describes one contiguous access to a single disk.
Besides plain reads and writes there is a read-modify-write (``RMW``)
access used by the parity organizations: the old contents are read, the
head then waits (at least) one full rotation and the new contents are
written in place.  For parity updates, the new contents are not computable
until the old *data* has been read on the data disk(s); the optional
``data_ready`` event expresses that dependency, and the servicing disk
spins in whole revolutions until it triggers (the cost the paper's
synchronization policies are designed to contain).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.des import Environment, Event

__all__ = ["AccessKind", "DiskRequest", "Priority"]

_req_counter = itertools.count()


class AccessKind(enum.Enum):
    """What the disk is asked to do with the addressed blocks."""

    READ = "read"
    WRITE = "write"
    #: Read old contents, rotate, write new contents in place.
    RMW = "rmw"


class Priority:
    """Standard queue priorities (lower value is served first)."""

    PARITY_URGENT = -1.0  # parity accesses under the /PR policies
    NORMAL = 0.0  # synchronous (user-visible) accesses
    DESTAGE = 1.0  # background destage writes


@dataclass(slots=True)
class DiskRequest:
    """One contiguous access to a single disk.

    Parameters
    ----------
    kind:
        READ, WRITE or RMW.
    start_block:
        First physical block on the disk.
    nblocks:
        Number of consecutive blocks.
    priority:
        Queue priority (see :class:`Priority`).
    data_ready:
        For RMW/WRITE accesses whose payload depends on other reads
        (parity updates): the disk cannot write before this event.
    tag:
        Free-form annotation for tracing/debugging.
    """

    kind: AccessKind
    start_block: int
    nblocks: int = 1
    priority: float = Priority.NORMAL
    data_ready: Optional["Event"] = None
    #: For RMW accesses issued before their data is ready (the SI
    #: policy): how many whole revolutions the disk may be held waiting
    #: for ``data_ready`` before giving up and requeueing the access.
    #: ``None`` waits indefinitely (safe for RF/DF, whose dependency is
    #: guaranteed to resolve).
    max_hold_revolutions: Optional[int] = None
    tag: Any = None
    seq: int = field(default_factory=lambda: next(_req_counter))

    # Filled in by Disk.submit().
    submit_time: float = field(default=0.0, init=False)
    #: Triggered when the disk begins servicing this request.
    started: Optional["Event"] = field(default=None, init=False)
    #: Triggered when the read phase of an RMW completes (and for plain
    #: reads, at read completion, just before ``done``).
    read_complete: Optional["Event"] = field(default=None, init=False)
    #: Triggered at completion; value is the completion time.
    done: Optional["Event"] = field(default=None, init=False)
    #: Extra whole revolutions spent waiting for ``data_ready``.
    spin_revolutions: int = field(default=0, init=False)
    #: Times the disk gave up holding and requeued this access.
    hold_retries: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.nblocks <= 0:
            raise ValueError(f"nblocks must be positive, got {self.nblocks}")
        if self.start_block < 0:
            raise ValueError(f"start_block must be >= 0, got {self.start_block}")

    @property
    def end_block(self) -> int:
        """One past the last block accessed."""
        return self.start_block + self.nblocks

    def attach(self, env: "Environment") -> None:
        """Create the lifecycle events (called by :meth:`Disk.submit`)."""
        from repro.des import Event

        self.submit_time = env.now
        self.started = Event(env)
        self.read_complete = Event(env)
        self.done = Event(env)

    def renumber(self) -> None:
        """Assign a fresh sequence number (requeue goes behind peers)."""
        self.seq = next(_req_counter)

    def __repr__(self) -> str:
        return (
            f"DiskRequest({self.kind.value}, start={self.start_block}, "
            f"n={self.nblocks}, prio={self.priority}, tag={self.tag!r})"
        )
