"""Disk geometry: translating block addresses to physical positions.

Defaults reproduce Table 1 of the paper:

========================  =========
Rotation speed            5400 rpm
Average seek              11.2 ms
Maximal seek              28 ms
Tracks per platter        1260
Sectors per track         48
Bytes per sector          512
Number of platters        15
========================  =========

With 15 platters (30 recording surfaces) the capacity is
``1260 × 30 × 48 × 512 B ≈ 0.93 GB`` — the paper's "about 0.9 GByte".

Blocks (4 KB = 8 sectors by default) are laid out track-by-track within a
cylinder, then cylinder-by-cylinder, so logically consecutive blocks stay
physically adjacent (track switches inside a cylinder are treated as free,
an idealisation of track skew).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DiskGeometry"]


@dataclass(frozen=True)
class DiskGeometry:
    """Physical disk parameters and address arithmetic.

    All times are in milliseconds.
    """

    cylinders: int = 1260
    surfaces: int = 30  # 15 platters, two heads each
    sectors_per_track: int = 48
    bytes_per_sector: int = 512
    rpm: float = 5400.0
    block_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.block_bytes % self.bytes_per_sector:
            raise ValueError("block size must be a whole number of sectors")
        if (self.sectors_per_track * self.bytes_per_sector) % self.block_bytes:
            raise ValueError("track capacity must be a whole number of blocks")
        for name in ("cylinders", "surfaces", "sectors_per_track", "bytes_per_sector"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")

    # -- derived quantities -------------------------------------------------
    @property
    def sectors_per_block(self) -> int:
        """Sectors occupied by one block (8 for 4 KB / 512 B)."""
        return self.block_bytes // self.bytes_per_sector

    @property
    def blocks_per_track(self) -> int:
        """Whole blocks per track (6 for 48 sectors / 8-sector blocks)."""
        return self.sectors_per_track // self.sectors_per_block

    @property
    def blocks_per_cylinder(self) -> int:
        """Blocks per cylinder across all surfaces."""
        return self.blocks_per_track * self.surfaces

    @property
    def total_blocks(self) -> int:
        """Capacity of the disk in blocks."""
        return self.blocks_per_cylinder * self.cylinders

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity in bytes."""
        return self.cylinders * self.surfaces * self.sectors_per_track * self.bytes_per_sector

    @property
    def revolution_time(self) -> float:
        """Time of one full revolution in ms (11.11 ms at 5400 rpm)."""
        return 60_000.0 / self.rpm

    @property
    def sector_time(self) -> float:
        """Time to pass over one sector in ms."""
        return self.revolution_time / self.sectors_per_track

    @property
    def block_transfer_time(self) -> float:
        """Time to read or write one block off the surface in ms."""
        return self.sector_time * self.sectors_per_block

    # -- address arithmetic ---------------------------------------------------
    def cylinder_of(self, block: int) -> int:
        """Cylinder holding *block*."""
        self._check_block(block)
        return block // self.blocks_per_cylinder

    def decompose(self, block: int) -> tuple[int, int, int]:
        """Return ``(cylinder, surface, block_in_track)`` of *block*."""
        self._check_block(block)
        cyl, rest = divmod(block, self.blocks_per_cylinder)
        surface, in_track = divmod(rest, self.blocks_per_track)
        return cyl, surface, in_track

    def compose(self, cylinder: int, surface: int, block_in_track: int) -> int:
        """Inverse of :meth:`decompose`."""
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        if not 0 <= surface < self.surfaces:
            raise ValueError(f"surface {surface} out of range")
        if not 0 <= block_in_track < self.blocks_per_track:
            raise ValueError(f"block_in_track {block_in_track} out of range")
        return (cylinder * self.surfaces + surface) * self.blocks_per_track + block_in_track

    def start_sector_of(self, block: int) -> int:
        """First sector (within its track) occupied by *block*."""
        _, _, in_track = self.decompose(block)
        return in_track * self.sectors_per_block

    def start_angle_of(self, block: int) -> float:
        """Angular position in [0, 1) at which *block* begins on its track."""
        return self.start_sector_of(block) / self.sectors_per_track

    def transfer_time(self, nblocks: int) -> float:
        """Surface transfer time for ``nblocks`` consecutive blocks.

        Track and cylinder switches within the run are treated as free
        (ideal skew), so the transfer proceeds at the sustained rate.
        """
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        return nblocks * self.block_transfer_time

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.total_blocks:
            raise ValueError(f"block {block} outside disk of {self.total_blocks} blocks")
