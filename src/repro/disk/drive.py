"""The disk drive service process.

Each :class:`Disk` owns a request queue (a pluggable
:class:`~repro.disk.scheduler.DiskScheduler`) and a single service loop
that executes one request at a time:

1. **Seek** — arm moves to the target cylinder (fitted seek curve).
2. **Latency** — the platter rotates continuously; the head waits until
   the first sector of the target block arrives.  The angular position is
   a pure function of simulated time (constant rpm, no spindle sync across
   disks, as in the paper).
3. **Transfer** — sectors pass under the head at the sustained rate.
4. For **RMW** accesses the head waits for the written sectors to come
   around again — one full revolution after the read ends — and rewrites
   them in place.  If the new contents depend on reads elsewhere
   (``data_ready``), the disk spins *whole extra revolutions* until the
   dependency is met: this is the cost that the paper's parity
   synchronization policies (SI/RF/DF...) trade against response time.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.des import Environment, Event, TimeWeighted
from repro.disk.geometry import DiskGeometry
from repro.disk.request import AccessKind, DiskRequest
from repro.disk.scheduler import DiskScheduler, FCFSScheduler
from repro.disk.seek import SeekModel

__all__ = ["Disk"]


class Disk:
    """A single disk drive with its queue and service process.

    Parameters
    ----------
    env:
        Simulation environment.
    geometry, seek_model:
        Physical model (Table 1 defaults via the factories in
        :mod:`repro.sim.config`).
    name:
        Identification for logging/metrics (e.g. ``"array3.disk7"``).
    scheduler:
        Queue discipline; FCFS with priority classes by default.
    """

    def __init__(
        self,
        env: Environment,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        name: str = "disk",
        scheduler: Optional[DiskScheduler] = None,
        phase: float = 0.0,
    ) -> None:
        if not 0.0 <= phase < 1.0:
            raise ValueError("phase must be in [0, 1)")
        self.env = env
        self.geometry = geometry
        self.seek_model = seek_model
        self.name = name
        self.scheduler = scheduler if scheduler is not None else FCFSScheduler()
        #: Rotational phase offset in revolutions.  The paper assumes no
        #: spindle synchronization, so the system builder randomises
        #: phases; 0.0 everywhere models synchronized spindles.
        self.phase = phase

        #: Current arm position.
        self.cylinder = 0
        self._wakeup: Optional[Event] = None
        self._current: Optional[DiskRequest] = None
        #: Optional observation tap (``repro.validate`` /
        #: ``repro.obs``): an object with ``on_disk_submit(disk,
        #: request)`` / ``on_disk_complete(disk, request)`` /
        #: ``on_disk_phase(disk, request, phase, t0, t1)``.  ``None``
        #: keeps the data path at one identity check per tap.
        self.probe = None

        # -- statistics --
        self.busy_time = 0.0
        self.seek_time_total = 0.0
        self.completed = 0
        self.reads = 0
        self.writes = 0
        self.rmws = 0
        self.blocks_transferred = 0
        self.queue_length = TimeWeighted(env.now, 0.0)

        self.process = env.process(self._serve())

    # -- public API ---------------------------------------------------------
    def submit(self, request: DiskRequest) -> DiskRequest:
        """Enqueue *request*; its ``started``/``done`` events are created."""
        request.attach(self.env)
        self.scheduler.put(request)
        self.queue_length.add(self.env.now, +1)
        if self.probe is not None:
            self.probe.on_disk_submit(self, request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request

    @property
    def pending(self) -> int:
        """Queued requests, excluding the one in service."""
        return len(self.scheduler)

    @property
    def in_service(self) -> Optional[DiskRequest]:
        """The request currently being serviced, if any."""
        return self._current

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of time the disk has been busy."""
        t = self.env.now if now is None else now
        return self.busy_time / t if t > 0 else 0.0

    # -- rotational timing ----------------------------------------------------
    def angle_at(self, time: float) -> float:
        """Angular position of the platter in [0, 1) at *time*."""
        rev = self.geometry.revolution_time
        return ((time % rev) / rev + self.phase) % 1.0

    def rotational_latency(self, time: float, block: int) -> float:
        """Time from *time* until the start sector of *block* is under the head."""
        target = self.geometry.start_angle_of(block)
        cur = self.angle_at(time)
        frac = (target - cur) % 1.0
        return frac * self.geometry.revolution_time

    def seek_distance_to(self, block: int) -> int:
        """Cylinders the arm would travel to reach *block* right now."""
        return abs(self.geometry.cylinder_of(block) - self.cylinder)

    # -- service loop -----------------------------------------------------------
    def _serve(self) -> Generator[Event, None, None]:
        env = self.env
        while True:
            while len(self.scheduler) == 0:
                self._wakeup = Event(env)
                yield self._wakeup
                self._wakeup = None
            request = self.scheduler.pop(self.cylinder)
            self.queue_length.add(env.now, -1)
            self._current = request
            assert request.started is not None
            if not request.started.triggered:  # first service attempt
                request.started.succeed(env.now)
            t0 = env.now
            finished = yield from self._service(request)
            self.busy_time += env.now - t0
            if finished:
                self.completed += 1
                self.blocks_transferred += request.nblocks
                if self.probe is not None:
                    self.probe.on_disk_complete(self, request)
            self._current = None

    def _service(self, request: DiskRequest) -> Generator[Event, None, bool]:
        env = self.env
        geo = self.geometry
        probe = self.probe

        # Seek.
        target_cyl = geo.cylinder_of(request.start_block)
        seek = self.seek_model.seek_time(abs(target_cyl - self.cylinder))
        self.cylinder = target_cyl
        self.seek_time_total += seek
        if seek > 0.0:
            yield env.timeout(seek)
            if probe is not None:
                probe.on_disk_phase(self, request, "seek", env.now - seek, env.now)

        # Rotational latency.
        latency = self.rotational_latency(env.now, request.start_block)
        if latency > 0.0:
            yield env.timeout(latency)
            if probe is not None:
                probe.on_disk_phase(self, request, "rotation", env.now - latency, env.now)

        xfer = geo.transfer_time(request.nblocks)
        rev = geo.revolution_time

        if request.kind is AccessKind.READ:
            self.reads += 1
            yield env.timeout(xfer)
            if probe is not None:
                probe.on_disk_phase(self, request, "transfer", env.now - xfer, env.now)
            request.read_complete.succeed(env.now)
            self._finish(request)

        elif request.kind is AccessKind.WRITE:
            self.writes += 1
            if request.data_ready is not None and not request.data_ready.triggered:
                # Dependent write (e.g. reconstruct-write parity): hold the
                # disk until the payload is computable, then wait for the
                # sectors to come around again.
                wait0 = env.now
                yield request.data_ready
                if probe is not None:
                    probe.on_disk_phase(self, request, "sync_wait", wait0, env.now)
                relat = self.rotational_latency(env.now, request.start_block)
                if relat > 0.0:
                    yield env.timeout(relat)
                    if probe is not None:
                        probe.on_disk_phase(
                            self, request, "rotation", env.now - relat, env.now
                        )
            yield env.timeout(xfer)
            if probe is not None:
                probe.on_disk_phase(self, request, "transfer", env.now - xfer, env.now)
            self._finish(request)

        else:  # RMW
            self.rmws += 1
            yield env.timeout(xfer)  # read old contents
            if probe is not None:
                probe.on_disk_phase(self, request, "transfer", env.now - xfer, env.now)
            if not request.read_complete.triggered:
                request.read_complete.succeed(env.now)
            read_end = env.now
            # Earliest in-place rewrite: when the run's first sector comes
            # back under the head.  For a single block that is one full
            # revolution after the read began, i.e. (rev - xfer) after it
            # ended; for runs longer than a revolution the latency wraps.
            slot = read_end + self.rotational_latency(read_end, request.start_block)
            if request.data_ready is not None and not request.data_ready.triggered:
                if request.max_hold_revolutions is None:
                    yield request.data_ready
                    if probe is not None:
                        probe.on_disk_phase(
                            self, request, "sync_wait", read_end, env.now
                        )
                else:
                    # Bounded hold (SI policy): give up after the allowed
                    # revolutions, requeue behind other waiting accesses
                    # and let them through — this is what breaks the
                    # cross-disk circular wait SI can otherwise create.
                    budget = slot - env.now + request.max_hold_revolutions * rev
                    deadline = env.timeout(budget)
                    yield request.data_ready | deadline
                    if probe is not None:
                        probe.on_disk_phase(
                            self, request, "sync_wait", read_end, env.now
                        )
                    if not request.data_ready.triggered:
                        request.spin_revolutions += request.max_hold_revolutions
                        request.hold_retries += 1
                        request.renumber()
                        self.scheduler.put(request)
                        self.queue_length.add(env.now, +1)
                        return False
            if env.now > slot:
                spins = math.ceil((env.now - slot) / rev - 1e-12)
                request.spin_revolutions += spins
                slot += spins * rev
            if probe is not None:
                probe.on_disk_phase(self, request, "rmw_rotate", env.now, slot)
                probe.on_disk_phase(self, request, "transfer", slot, slot + xfer)
            yield env.timeout(slot - env.now + xfer)
            self._finish(request)

        # Arm parks at the cylinder of the last transferred block.
        self.cylinder = geo.cylinder_of(request.start_block + request.nblocks - 1)
        return True

    def _finish(self, request: DiskRequest) -> None:
        assert request.done is not None
        request.done.succeed(self.env.now)

    def __repr__(self) -> str:
        return f"<Disk {self.name} cyl={self.cylinder} queue={self.pending}>"
