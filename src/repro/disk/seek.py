r"""Seek-time model.

The paper computes seek time as a non-linear function of seek distance

.. math::  t(x) = a\sqrt{x-1} + b(x-1) + c,  \qquad x \ge 1,

with :math:`t(0) = 0`.  The coefficients are calibrated so that the curve
reproduces Table 1: an *average* seek of 11.2 ms and a *maximal* (full
stroke) seek of 28 ms.  The square-root term models the acceleration phase
of the arm, the linear term the coast phase, and :math:`c` the settle time
(which equals the single-cylinder seek time).

Calibration: given the settle time ``c`` the two remaining coefficients
are the solution of a 2×2 *linear* system

.. math::
    a\,E[\sqrt{X-1}] + b\,E[X-1] + c &= t_{avg} \\
    a\sqrt{X_{max}-1} + b(X_{max}-1) + c &= t_{max}

where the expectation is over the seek-distance distribution of two
independent uniformly random cylinder positions, conditioned on an actual
arm movement (:math:`X \ge 1`):
:math:`P(X{=}x) \propto 2(C-x)/C^2`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["SeekModel"]


@dataclass(frozen=True)
class SeekModel:
    """Seek time curve ``t(x) = a*sqrt(x-1) + b*(x-1) + c`` (ms)."""

    a: float
    b: float
    c: float
    cylinders: int

    @classmethod
    def fit(
        cls,
        cylinders: int = 1260,
        average_ms: float = 11.2,
        maximal_ms: float = 28.0,
        settle_ms: float = 2.0,
    ) -> "SeekModel":
        """Calibrate the curve against Table 1's average/maximal seek.

        Parameters
        ----------
        cylinders:
            Number of cylinders ``C``; the maximal seek distance is ``C-1``.
        average_ms:
            Mean seek time over random pairs of cylinder positions with an
            actual movement.
        maximal_ms:
            Full-stroke seek time.
        settle_ms:
            Single-cylinder seek time ``t(1) = c``.  2 ms is typical for
            early-1990s 3.5" drives; the paper does not specify it.
        """
        if cylinders < 3:
            raise ValueError("need at least 3 cylinders to fit")
        if not 0 < settle_ms < average_ms < maximal_ms:
            raise ValueError("expected 0 < settle < average < maximal")
        dmax = cylinders - 1
        d = np.arange(1, cylinders, dtype=np.float64)
        # Triangular distance distribution of two uniform positions,
        # conditioned on d >= 1.
        w = 2.0 * (cylinders - d)
        w /= w.sum()
        e_sqrt = float(np.sum(w * np.sqrt(d - 1.0)))
        e_lin = float(np.sum(w * (d - 1.0)))
        # Solve [[e_sqrt, e_lin], [sqrt(dmax-1), dmax-1]] @ [a, b] = rhs.
        mat = np.array([[e_sqrt, e_lin], [math.sqrt(dmax - 1.0), dmax - 1.0]])
        rhs = np.array([average_ms - settle_ms, maximal_ms - settle_ms])
        a, b = np.linalg.solve(mat, rhs)
        if a < 0 or b < 0:
            raise ValueError(
                f"non-monotonic fit (a={a:.4g}, b={b:.4g}); "
                "choose a different settle time"
            )
        return cls(a=float(a), b=float(b), c=settle_ms, cylinders=cylinders)

    @cached_property
    def _lut(self) -> list[float]:
        """Seek time per whole-cylinder distance, 0..cylinders-1.

        Built with the exact scalar formula, so a table lookup is
        bit-identical to computing the curve — the hot path (one seek
        per disk access, always an integer distance) becomes a list
        index instead of a sqrt.
        """
        return [self._curve(d) for d in range(self.cylinders)]

    def _curve(self, distance: float) -> float:
        if distance == 0:
            return 0.0
        x = float(distance)
        return self.a * math.sqrt(x - 1.0) + self.b * (x - 1.0) + self.c

    def seek_time(self, distance: int | float) -> float:
        """Seek time in ms for a move of ``distance`` cylinders (0 → 0 ms)."""
        if type(distance) is int and 0 <= distance < self.cylinders:
            return self._lut[distance]
        if distance < 0:
            raise ValueError(f"negative seek distance {distance}")
        return self._curve(distance)

    def seek_times(self, distances: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`seek_time` (distance 0 → 0 ms)."""
        x = np.asarray(distances, dtype=np.float64)
        if np.any(x < 0):
            raise ValueError("negative seek distance")
        out = self.a * np.sqrt(np.maximum(x - 1.0, 0.0)) + self.b * np.maximum(x - 1.0, 0.0) + self.c
        return np.where(x == 0, 0.0, out)

    def average_seek_time(self) -> float:
        """Mean seek time under the calibration distance distribution."""
        d = np.arange(1, self.cylinders, dtype=np.float64)
        w = 2.0 * (self.cylinders - d)
        w /= w.sum()
        return float(np.sum(w * self.seek_times(d)))

    def max_seek_time(self) -> float:
        """Full-stroke seek time."""
        return self.seek_time(self.cylinders - 1)
