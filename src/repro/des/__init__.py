"""Discrete-event simulation kernel.

A compact, deterministic, generator-coroutine DES kernel in the style of
simpy (which is not available in this offline environment).  Simulation
*processes* are Python generators that ``yield`` :class:`~repro.des.events.Event`
instances; the :class:`~repro.des.environment.Environment` advances a virtual
clock and resumes processes when the events they wait on are triggered.

Determinism: events scheduled for the same simulated time are processed in
schedule order (a monotonically increasing sequence number breaks ties), so a
simulation with a fixed random seed is exactly reproducible.

Example
-------
>>> from repro.des import Environment
>>> def clock(env, out):
...     while env.now < 3:
...         out.append(env.now)
...         yield env.timeout(1)
>>> env = Environment()
>>> ticks = []
>>> env.process(clock(env, ticks))
<Process(clock) object at ...>
>>> env.run()
>>> ticks
[0, 1, 2]
"""

from repro.des.environment import Environment
from repro.des.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from repro.des.process import Process
from repro.des.resources import (
    PriorityStore,
    Release,
    Request,
    Resource,
    Store,
)
from repro.des.monitor import Tally, TimeWeighted

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Release",
    "Request",
    "Resource",
    "Store",
    "Tally",
    "TimeWeighted",
    "Timeout",
]
