"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence with an outcome (a value on
success, an exception on failure).  Processes wait on events by yielding
them; arbitrary callbacks may also be attached.  Events move through three
states:

``pending``
    created but not yet triggered; ``callbacks`` is a (possibly empty) list.
``triggered``
    an outcome has been set and the event sits in the environment's queue.
``processed``
    the environment has invoked the callbacks; ``callbacks`` is ``None``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Interrupt",
]


class _PendingType:
    """Sentinel type for the value of an untriggered event."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel marking an event whose outcome has not been decided yet.
PENDING = _PendingType()


class Event:
    """A one-shot simulation event.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (in order) when the event is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._exc: Optional[BaseException] = None
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once an outcome (success or failure) has been set."""
        return self._value is not PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's outcome value.

        Raises :class:`AttributeError` if the event is not yet triggered.
        """
        if self._value is PENDING and self._exc is None:
            raise AttributeError(f"value of {self!r} is not yet available")
        if not self._ok:
            assert self._exc is not None
            return self._exc
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Set a successful outcome and schedule the event immediately."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Set a failure outcome and schedule the event immediately.

        The failure propagates to every waiting process; if nobody handles
        it (``defused``), :meth:`Environment.step` re-raises it, ending the
        simulation loudly rather than silently dropping an error.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._exc = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of *event* onto this event and schedule it.

        Used to chain events (e.g. forwarding a sub-operation's outcome).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self._exc = event._exc
        self.env.schedule(self)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__}() object at 0x{id(self):x}>"


class Timeout(Event):
    """An event that triggers after a fixed delay.

    The timeout is scheduled at construction time, so creating one is
    enough; there is no separate activation step.

    Timeouts carry a single-slot fast lane (``_proc``): when exactly one
    process yields a pending timeout that has no other callbacks, the
    process parks itself in ``_proc`` instead of appending a bound
    ``_resume`` to the callback list.  The environment resumes ``_proc``
    first when the timeout fires — semantically the slot is
    ``callbacks[0]``, so dispatch order is unchanged — and may then
    recycle the object through its freelist.  Any second waiter, explicit
    callback or condition falls back to the ordinary list (and inhibits
    recycling).
    """

    __slots__ = ("delay", "_proc")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._proc = None
        env.schedule(self, delay)

    @property
    def triggered(self) -> bool:
        # A timeout's outcome is decided at creation; it is "triggered"
        # only once its time has come (i.e. it has been processed).
        return self.processed

    def __repr__(self) -> str:
        return f"<Timeout({self.delay}) object at 0x{id(self):x}>"


class ConditionValue:
    """Ordered mapping of the events that triggered inside a condition."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        """Return a plain ``{event: value}`` dict."""
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """An event that triggers when a predicate over sub-events holds.

    Used through the ``&`` / ``|`` operators or the :class:`AllOf` /
    :class:`AnyOf` helpers.  The condition's value is a
    :class:`ConditionValue` collecting the triggered sub-events in
    trigger order.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list["Event"], int], bool],
        events: Iterable["Event"],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        # Immediately check events that are already processed, subscribe
        # to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            # An empty condition is trivially satisfied.
            self.succeed(ConditionValue())

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if event.callbacks is None and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: "Event") -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._exc)  # type: ignore[arg-type]
        elif self._evaluate(self._events, self._count):
            self.succeed(None)

    def _build_value(self, event: "Event") -> None:
        if event._ok:
            self._value = self._collect_values()

    def succeed(self, value: Any = None) -> "Event":  # noqa: D102
        super().succeed(value)
        # Collect values lazily at processing time so that sub-events that
        # trigger at the same instant are included.
        assert self.callbacks is not None
        self.callbacks.insert(0, self._build_value)
        return self

    @staticmethod
    def all_events(events: list["Event"], count: int) -> bool:
        """Predicate: all sub-events have triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list["Event"], count: int) -> bool:
        """Predicate: at least one sub-event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]) -> None:
        super().__init__(env, Condition.any_events, events)


class Interrupt(Exception):
    """Exception thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
