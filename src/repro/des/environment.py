"""The simulation environment: virtual clock and event queue.

The environment owns a binary-heap event queue keyed by
``(time, sequence)``; the sequence number is a monotonically increasing
counter, so same-time events are processed in the order they were
scheduled.  Combined with seeded random number generators this makes every
simulation run bit-for-bit reproducible.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional, Union

from repro.des.events import Event, Timeout
from repro.des.process import Process

__all__ = ["Environment", "EmptySchedule"]

#: Signature of an event observer: ``hook(time, event)``.
EventHook = Callable[[float, Event], None]

#: Upper bound on recycled :class:`Timeout` objects kept per environment.
#: Steady state needs about one per concurrently sleeping process; the cap
#: only bounds pathological churn.
_TIMEOUT_POOL_CAP = 1024


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Coordinates event scheduling and process execution.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
        Time units are milliseconds throughout this package, but the
        kernel itself is unit-agnostic.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active_proc",
        "_event_hooks",
        "_timeout_pool",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_proc: Optional[Process] = None
        # Observer hooks, called as ``hook(time, event)`` for every
        # processed event.  ``None`` (the default) keeps the hot path to
        # a single identity check per step.
        self._event_hooks: Optional[list[EventHook]] = None
        # Freelist of processed fast-lane timeouts.  Only timeouts whose
        # sole consumer was a process parked in the ``_proc`` slot are
        # recycled — anything with a callback list entry (conditions,
        # ``run(until=...)``, extra waiters) may still be referenced by
        # its subscribers and is left to the garbage collector.
        self._timeout_pool: list[Timeout] = []

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- observation -------------------------------------------------------
    def on_event(self, hook: EventHook) -> EventHook:
        """Register *hook* to be called for every processed event.

        The hook runs as ``hook(time, event)`` immediately after the
        clock advances and before the event's callbacks fire.  Hooks are
        the kernel's only observation point; the validation subsystem
        uses them to check the ``(time, sequence)`` ordering contract.
        Returns the hook so it can be passed to :meth:`off_event`.
        """
        if self._event_hooks is None:
            self._event_hooks = []
        self._event_hooks.append(hook)
        return hook

    def off_event(self, hook: EventHook) -> None:
        """Unregister a hook added with :meth:`on_event`."""
        if self._event_hooks is None or hook not in self._event_hooks:
            raise ValueError("hook is not registered")
        self._event_hooks.remove(hook)
        if not self._event_hooks:
            self._event_hooks = None

    # -- scheduling -------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Insert *event* into the queue ``delay`` time units from now."""
        self._seq += 1
        heappush(self._queue, (self._now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event.

        Advances the clock, pops the event, runs its callbacks.  If the
        event failed and no handler defused the failure, the exception is
        re-raised here so that programming errors inside processes surface
        instead of being swallowed.

        The dispatch body is intentionally duplicated inside the
        :meth:`run` hot loops; any semantic change here must be mirrored
        there (the kernel test-suite pins the shared behavior).
        """
        try:
            self._now, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        if self._event_hooks is not None:
            for hook in self._event_hooks:
                hook(self._now, event)

        if type(event) is Timeout:
            proc = event._proc
            callbacks = event.callbacks
            event.callbacks = None
            if proc is not None:
                # The fast-lane slot is semantically ``callbacks[0]``.
                event._proc = None
                proc._resume(event)
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                elif len(self._timeout_pool) < _TIMEOUT_POOL_CAP:
                    self._timeout_pool.append(event)
            else:
                for callback in callbacks:
                    callback(event)
            return  # timeouts always succeed; no failure to propagate

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._exc
            assert exc is not None
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue is exhausted;
            a number
                run until the clock reaches that time (the clock is set to
                exactly ``until`` on return);
            an :class:`Event`
                run until that event has been processed and return its
                value (re-raising its exception if it failed).

        The ``None`` and :class:`Event` forms inline the pop-and-dispatch
        body of :meth:`step` (saving a method call and re-binding per
        event); pop order and callback order are identical to repeated
        :meth:`step` calls.
        """
        if until is None or isinstance(until, Event):
            if until is None:
                flag: list[bool] = []
                stop = None
            else:
                stop = until
                if stop.callbacks is None:  # already processed
                    return stop.value
                flag = []
                stop.callbacks.append(lambda _e: flag.append(True))

            # Hot loop: local bindings, inlined dispatch.  ``resume`` is
            # the unbound method, called as ``resume(proc, event)`` to
            # avoid allocating a bound method per fast-lane event.
            queue = self._queue
            pool = self._timeout_pool
            pop = heappop
            timeout_t = Timeout
            resume = Process._resume
            while not flag:
                if not queue:
                    if stop is None:
                        return None
                    raise RuntimeError(
                        f"no more events; {stop!r} never triggered"
                    ) from None
                self._now, _, event = pop(queue)

                hooks = self._event_hooks
                if hooks is not None:
                    for hook in hooks:
                        hook(self._now, event)

                if type(event) is timeout_t:
                    proc = event._proc
                    callbacks = event.callbacks
                    event.callbacks = None
                    if proc is not None:
                        event._proc = None
                        resume(proc, event)
                        if callbacks:
                            for callback in callbacks:
                                callback(event)
                        elif len(pool) < _TIMEOUT_POOL_CAP:
                            pool.append(event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    continue

                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)

                if not event._ok and not event._defused:
                    exc = event._exc
                    assert exc is not None
                    raise exc

            assert stop is not None
            return stop.value

        at = float(until)
        if at < self._now:
            raise ValueError(f"until ({at}) must be >= now ({self._now})")
        while self._queue and self._queue[0][0] <= at:
            self.step()
        self._now = at
        return None

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` from now.

        Reuses a recycled timeout from the freelist when one is
        available, skipping the constructor chain on the dominant
        sleep-resume path.  Recycled objects are indistinguishable from
        fresh ones: ``_ok``/``_exc``/``_defused``/``_proc`` are invariant
        across a fast-lane cycle, so only the outcome fields are reset.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            event = pool.pop()
            event.delay = delay
            event._value = value
            event.callbacks = []
            self._seq += 1
            heappush(self._queue, (self._now + delay, self._seq, event))
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Launch *generator* as a simulation :class:`Process`."""
        return Process(self, generator)

    def all_of(self, events) -> Event:
        """Event triggering once all of *events* have triggered."""
        from repro.des.events import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        """Event triggering once any of *events* has triggered."""
        from repro.des.events import AnyOf

        return AnyOf(self, events)
