"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield``ed event
suspends the process; when that event triggers, the process resumes with
the event's value (or the event's exception is thrown into the generator).
A process is itself an event that triggers when the generator returns, so
processes can wait for each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.des.events import Event, Interrupt, PENDING, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment

__all__ = ["Process"]


class Process(Event):
    """An active simulation entity driven by a generator.

    The process is started immediately: an initialization event is
    scheduled at the current simulation time, so the generator body begins
    executing once the environment processes that event (i.e. *not*
    synchronously inside the constructor).
    """

    __slots__ = ("_generator", "_send", "_target", "name", "parent")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Pre-bound send(): one attribute hop instead of two per resume.
        self._send = generator.send
        self.name = getattr(generator, "__name__", "process")
        #: The process that was active when this one was spawned (``None``
        #: for processes created outside any process, e.g. at build time).
        #: Observers use the chain to attribute work to a logical request.
        self.parent: Optional[Process] = env.active_process

        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks = [self._resume]
        env.schedule(init)
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING and self._exc is None

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process stops waiting on its current target (it may re-yield
        it to continue waiting) and the ``Interrupt`` exception is raised
        at the point of the current ``yield``.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")

        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._exc = Interrupt(cause)
        interrupt_ev._defused = True
        # Detach from the current target so a late trigger does not resume
        # the process twice.  A timeout holding us in its fast-lane slot is
        # cleared the same way a list waiter would be removed.
        target = self._target
        if target is not None:
            if type(target) is Timeout and target._proc is self:
                target._proc = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None
        interrupt_ev.callbacks = [self._resume]
        self.env.schedule(interrupt_ev)

    # -- machinery ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with *event*'s outcome."""
        env = self.env
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    # The process handles (or propagates) the failure.
                    event._defused = True
                    exc = event._exc
                    assert exc is not None
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as error:
                self._target = None
                self._ok = False
                self._exc = error
                self._defused = False
                env.schedule(self)
                break

            # The dominant sleep-resume pattern — yielding a fresh pending
            # timeout nobody else waits on — parks this process in the
            # timeout's fast-lane slot, skipping the bound-method
            # allocation and list append of the generic path below.
            if type(next_event) is Timeout:
                cbs = next_event.callbacks
                if cbs is not None:
                    if next_event._proc is None and not cbs:
                        next_event._proc = self
                    else:
                        cbs.append(self._resume)
                    self._target = next_event
                    break
                # Already processed: continue synchronously.
                event = next_event
                continue

            if not isinstance(next_event, Event):
                error = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._target = None
                self._ok = False
                self._exc = error
                env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Already processed: continue synchronously with its outcome.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process({self.name}) object at 0x{id(self):x}>"
