"""Shared resources and stores for the DES kernel.

:class:`Resource`
    Limited-capacity server pool with priority queueing (lower value =
    higher priority; FIFO within a priority class).  Used to model the
    host channel and track-buffer pools.

:class:`Store` / :class:`PriorityStore`
    Producer/consumer buffers of Python objects.  Disk service loops pull
    :class:`~repro.disk.request.DiskRequest` items from a
    :class:`PriorityStore`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment

__all__ = ["Request", "Release", "Resource", "Store", "StorePut", "StoreGet", "PriorityStore"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Supports the context-manager protocol so that callers can write::

        with resource.request() as req:
            yield req
            ...

    and have the claim released automatically.
    """

    __slots__ = ("resource", "priority", "time")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.time = resource.env.now

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)


class Release(Event):
    """Event representing the completion of a release (always immediate)."""

    __slots__ = ("request",)

    def __init__(self, env: "Environment", request: Request) -> None:
        super().__init__(env)
        self.request = request
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical servers with a priority queue.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of claims that may be outstanding simultaneously.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._waiting: list[tuple[float, int, Request]] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of currently granted claims."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a server; the returned event triggers when granted."""
        req = Request(self, priority)
        if len(self.users) < self.capacity and not self._waiting:
            self.users.append(req)
            req.succeed()
        else:
            self._seq += 1
            heapq.heappush(self._waiting, (priority, self._seq, req))
        return req

    def release(self, request: Request) -> Release:
        """Release a granted claim, waking the highest-priority waiter."""
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError(f"{request!r} does not hold {self!r}") from None
        self._grant_next()
        return Release(self.env, request)

    def _cancel(self, request: Request) -> None:
        for i, (_, _, queued) in enumerate(self._waiting):
            if queued is request:
                del self._waiting[i]
                heapq.heapify(self._waiting)
                return

    def _grant_next(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            _, _, req = heapq.heappop(self._waiting)
            if req.triggered:  # pragma: no cover - cancelled and re-granted
                continue
            self.users.append(req)
            req.succeed()


class StorePut(Event):
    """Completion event of a :meth:`Store.put` (always immediate here)."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any) -> None:
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Event that triggers with the next available store item."""

    __slots__ = ()


class Store:
    """Unbounded FIFO buffer of Python objects."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Snapshot of buffered items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> StorePut:
        """Add *item*; wakes the oldest waiting getter, if any."""
        event = StorePut(self.env, item)
        event.succeed(item)
        self._items.append(item)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request the next item; triggers immediately if one is buffered."""
        event = StoreGet(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered:  # pragma: no cover - defensive
                continue
            getter.succeed(self._pop_item())

    def _pop_item(self) -> Any:
        return self._items.popleft()


class PriorityStore(Store):
    """Store whose items are retrieved lowest-priority-value first.

    Items are inserted with an explicit priority; ties are FIFO.  Disk
    queues use this: priority 0 for synchronous accesses, negative values
    for parity accesses under the */PR* synchronization policies, and
    positive values for background destage writes.
    """

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list[Any]:
        """Snapshot of buffered items in retrieval order."""
        return [item for _, _, item in sorted(self._heap)]

    def put(self, item: Any, priority: float = 0.0) -> StorePut:  # type: ignore[override]
        """Insert *item* with the given priority."""
        event = StorePut(self.env, item)
        event.succeed(item)
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, item))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        while self._getters and self._heap:
            getter = self._getters.popleft()
            if getter.triggered:  # pragma: no cover - defensive
                continue
            getter.succeed(self._pop_item())

    def _pop_item(self) -> Any:
        _, _, item = heapq.heappop(self._heap)
        return item
