"""Statistics collectors for simulation outputs.

:class:`Tally`
    Streaming sample statistics (Welford mean/variance, min/max) with an
    optional full sample store for exact percentiles.

:class:`TimeWeighted`
    Time-weighted statistics for piecewise-constant signals such as queue
    lengths and busy/idle indicators.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["Tally", "TimeWeighted"]


class Tally:
    """Streaming statistics over a sequence of observations.

    Parameters
    ----------
    keep_samples:
        If True (default), every observation is stored so that exact
        percentiles can be computed.  Disable for very long runs where
        only mean/variance are needed.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max", "_samples")

    def __init__(self, keep_samples: bool = True) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: Optional[list[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._samples is not None:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for fewer than 2 samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-safe

    def percentile(self, q: float) -> float:
        """Exact percentile ``q`` in [0, 100]; requires stored samples.

        Raises
        ------
        ValueError
            If the tally was built with ``keep_samples=False`` — there is
            no sample store to compute an exact percentile from.  (An
            *empty* tally with a sample store returns NaN instead.)  Use
            a :class:`repro.obs.Histogram` when approximate percentiles
            without a sample store are acceptable.
        """
        if self._samples is None:
            raise ValueError(
                "percentile requires keep_samples=True (no sample store on "
                "this Tally); use repro.obs.Histogram for approximate "
                "percentiles without storing samples"
            )
        if not self._samples:
            return math.nan
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def samples(self) -> np.ndarray:
        """All recorded observations as an array.

        Raises :class:`ValueError` if the tally was built with
        ``keep_samples=False``.
        """
        if self._samples is None:
            raise ValueError("samples were not kept (keep_samples=False)")
        return np.asarray(self._samples)

    def merge(self, other: "Tally") -> "Tally":
        """Combine two tallies (parallel-axis update of the moments)."""
        out = Tally(keep_samples=self._samples is not None and other._samples is not None)
        n = self.count + other.count
        if n == 0:
            return out
        delta = other._mean - self._mean
        out.count = n
        out._mean = self._mean + delta * other.count / n
        out._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        if out._samples is not None:
            out._samples = list(self._samples or []) + list(other._samples or [])
        return out

    def __repr__(self) -> str:
        return f"Tally(n={self.count}, mean={self.mean:.4g}, min={self.min:.4g}, max={self.max:.4g})"


class TimeWeighted:
    """Time-weighted mean of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the value holds from
    the previous update time to the current one.
    """

    __slots__ = ("_last_time", "_value", "_area", "_start", "max", "min")

    def __init__(self, time: float = 0.0, value: float = 0.0) -> None:
        self._last_time = time
        self._value = value
        self._area = 0.0
        self._start = time
        self.max = value
        self.min = value

    @property
    def value(self) -> float:
        """The current signal value."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Set the signal to *value* at *time*."""
        if time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def add(self, time: float, delta: float) -> None:
        """Increment the signal by *delta* at *time*."""
        self.update(time, self._value + delta)

    def mean(self, now: float) -> float:
        """Time-weighted mean over ``[start, now]``."""
        span = now - self._start
        if span <= 0:
            return math.nan
        area = self._area + self._value * (now - self._last_time)
        return area / span

    def __repr__(self) -> str:
        return f"TimeWeighted(value={self._value:.4g}, max={self.max:.4g})"
