"""Trace transformations used by the experiments.

* :func:`scale_speed` — the paper's §4.2.4 "trace speed" experiment:
  arrival times are divided by the speed factor (2× speed halves every
  interarrival gap).
* :func:`slice_arrays` — restrict a trace to a contiguous range of
  logical disks (used to simulate a subset of a large system's arrays at
  identical per-disk load).
* :func:`clip_requests` — truncate a trace to its first *n* requests.
"""

from __future__ import annotations

import numpy as np

from repro.trace.record import Trace

__all__ = ["scale_speed", "slice_arrays", "clip_requests"]


def scale_speed(trace: Trace, speed: float) -> Trace:
    """Speed the trace up (speed > 1) or slow it down (speed < 1).

    The request stream is unchanged; only arrival times scale by
    ``1/speed``.  As the paper notes, a sped-up trace does not correspond
    to any real system (transactions would stall on earlier I/Os); it is
    a load knob.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    records = trace.records.copy()
    records["time"] = records["time"] / speed
    return Trace(
        records,
        trace.ndisks,
        trace.blocks_per_disk,
        name=f"{trace.name}@speed{speed:g}",
    )


def slice_arrays(trace: Trace, first_disk: int, ndisks: int) -> Trace:
    """Keep only requests addressed to logical disks ``[first, first+n)``.

    Addresses are rebased so the result is a self-contained trace over
    ``ndisks`` logical disks.  Requests that straddle the boundary are
    clipped to the kept range (they are vanishingly rare: requests stay
    within one logical disk by construction in the generator).
    """
    if not 0 <= first_disk < trace.ndisks:
        raise ValueError(f"first_disk {first_disk} out of range")
    if ndisks < 1 or first_disk + ndisks > trace.ndisks:
        raise ValueError("disk range outside trace")
    bpd = trace.blocks_per_disk
    lo = first_disk * bpd
    hi = (first_disk + ndisks) * bpd
    r = trace.records
    starts = r["lblock"]
    ends = starts + r["nblocks"]
    keep = (starts < hi) & (ends > lo)
    out = r[keep].copy()
    new_start = np.maximum(out["lblock"], lo)
    new_end = np.minimum(out["lblock"] + out["nblocks"], hi)
    out["lblock"] = new_start - lo
    out["nblocks"] = (new_end - new_start).astype(np.int32)
    return Trace(
        out,
        ndisks,
        bpd,
        name=f"{trace.name}[disks {first_disk}..{first_disk + ndisks - 1}]",
    )


def clip_requests(trace: Trace, n: int) -> Trace:
    """Truncate the trace to its first *n* requests."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return Trace(
        trace.records[:n].copy(),
        trace.ndisks,
        trace.blocks_per_disk,
        name=f"{trace.name}[:{n}]",
    )
