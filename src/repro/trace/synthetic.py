"""Calibrated synthetic OLTP trace generation.

The paper's IBM DB2 customer traces are proprietary; this generator
produces traces that reproduce the workload *shape* the paper reports,
each aspect controlled by an explicit knob:

===============================  ==========================================
Paper observation                 Generator mechanism
===============================  ==========================================
95–98% single-block requests      ``multiblock_fraction`` (sizes geometric)
10% / 28% writes                  ``write_fraction``
skewed per-disk access counts     Zipf-weighted disk choice (``disk_zipf``)
(Fig. 6)                          with a seeded permutation
within-disk locality /            per-disk hot region (``hot_spot_*``) and
seek affinity                     sequential run continuation
temporal locality (cache hits,    re-reference of an LRU-ish history with
Fig. 11 curves)                   lognormal stack distances (``rehit_*``)
write hit ratio ≈ 1 (Trace 1,     writes re-address recently *read* blocks
"read by the transaction          (``write_after_read_prob``) — the DB2
before being updated")            read-before-write pattern
bursty transaction arrivals       2-state modulated Poisson process
                                  (``burst_*``)
===============================  ==========================================

Presets :func:`trace1_config` and :func:`trace2_config` are calibrated
against Table 2 and the qualitative skew/locality descriptions in §3.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.trace.record import TRACE_DTYPE, Trace

__all__ = [
    "SyntheticTraceConfig",
    "TraceStream",
    "generate_trace",
    "trace1_config",
    "trace2_config",
]

#: Default logical-disk size: the largest block count that fits the
#: Table-1 disk (226 800 blocks) while being divisible by every array
#: width (N+1 for N = 5, 10, 15, 20 -> 6, 11, 16, 21) and striping unit
#: (powers of two up to 64) used in the paper's experiments.
#: 221 760 = 2^6 · 3^2 · 5 · 7 · 11 blocks = 908 MB — the paper's
#: "about 0.9 GByte" database slice per disk.
DEFAULT_BLOCKS_PER_DISK = 221_760


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """All knobs of the synthetic workload.  See the module docstring."""

    name: str
    ndisks: int
    blocks_per_disk: int
    n_requests: int
    duration_ms: float
    # Request mix.
    write_fraction: float
    multiblock_fraction: float
    multiblock_mean_extra: float
    max_request_blocks: int
    # Spatial skew and locality.
    disk_zipf: float
    hot_spot_fraction: float
    hot_spot_weight: float
    sequential_prob: float
    # Temporal locality: re-references draw a lognormal stack distance
    # (median ``stack_median`` requests back, log-sd ``stack_sigma``);
    # draws beyond the available history degrade to fresh accesses, so
    # short traces simply have fewer far re-references, as real trace
    # prefixes do.
    rehit_prob: float
    rehit_window: int
    stack_median: float
    stack_sigma: float
    # Read-before-write correlation.
    write_after_read_prob: float
    recent_read_window: int
    # Arrival process.
    burst_rate_multiplier: float
    burst_fraction: float
    burst_mean_length: float
    # Update-intensive pages: short, very hot *write* runs (DB2 free
    # space maps, index roots, append areas).  These are what make fine
    # striping units attractive — at a large unit a whole hot run lands
    # on one disk (and one parity disk) and queues there.
    hot_write_runs: int = 0
    hot_write_run_blocks: int = 16
    hot_write_weight: float = 0.0
    # Per-VA address-space targeting (Heterogeneous Disk Arrays): the
    # logical disks are partitioned into Virtual Arrays of ``va_disks``
    # consecutive disks each, accesses split across VAs by
    # ``va_weights`` (default: proportional to size), and writes are
    # additionally skewed toward the hottest VAs by ``va_write_skew``
    # (>1 concentrates small writes on the mirrored hot VA, <1 spreads
    # them; 1 = writes follow reads).  Empty ``va_disks`` = legacy
    # behaviour, bit-identical.
    va_disks: tuple = ()
    va_weights: tuple = ()
    va_write_skew: float = 1.0
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.ndisks < 1 or self.blocks_per_disk < 1 or self.n_requests < 1:
            raise ValueError("sizes must be positive")
        if not isinstance(self.va_disks, tuple):
            object.__setattr__(self, "va_disks", tuple(self.va_disks))
        if not isinstance(self.va_weights, tuple):
            object.__setattr__(self, "va_weights", tuple(self.va_weights))
        if self.va_disks:
            if any(int(d) < 1 for d in self.va_disks):
                raise ValueError("va_disks entries must be >= 1")
            if sum(self.va_disks) != self.ndisks:
                raise ValueError(
                    f"va_disks {self.va_disks} must sum to ndisks={self.ndisks}"
                )
            if self.va_weights and len(self.va_weights) != len(self.va_disks):
                raise ValueError("va_weights must match va_disks in length")
            if any(w <= 0 for w in self.va_weights):
                raise ValueError("va_weights must be positive")
            if self.va_write_skew <= 0:
                raise ValueError("va_write_skew must be positive")
        elif self.va_weights:
            raise ValueError("va_weights requires va_disks")
        if self.duration_ms <= 0:
            raise ValueError("duration must be positive")
        for f in (
            "write_fraction",
            "multiblock_fraction",
            "hot_spot_weight",
            "sequential_prob",
            "rehit_prob",
            "write_after_read_prob",
        ):
            v = getattr(self, f)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{f} must be in [0, 1], got {v}")
        if not 0.0 < self.hot_spot_fraction <= 1.0:
            raise ValueError("hot_spot_fraction must be in (0, 1]")
        if self.max_request_blocks < 1:
            raise ValueError("max_request_blocks must be >= 1")
        if self.burst_rate_multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in [0, 1)")
        if not 0.0 <= self.hot_write_weight <= 1.0:
            raise ValueError("hot_write_weight must be in [0, 1]")
        if self.hot_write_runs < 0 or self.hot_write_run_blocks < 1:
            raise ValueError("invalid hot write run shape")

    def scaled(self, scale: float) -> "SyntheticTraceConfig":
        """Shrink/grow the trace while preserving the arrival rate.

        ``scale`` multiplies both the request count and the duration, so
        per-disk load is unchanged — a cheap way to make experiment runs
        tractable without altering queueing behaviour.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            n_requests=max(1, int(round(self.n_requests * scale))),
            duration_ms=self.duration_ms * scale,
            name=f"{self.name}" if scale == 1.0 else f"{self.name}@{scale:g}x",
        )


def trace1_config(scale: float = 1.0) -> SyntheticTraceConfig:
    """Trace-1-like workload (Table 2, left column).

    3.36 M requests over 130 data disks in 3 h 3 min; 10% writes; 98%
    single-block; moderate skew; high temporal locality with small
    working sets; writes nearly always to freshly read blocks.
    """
    return SyntheticTraceConfig(
        name="trace1",
        ndisks=130,
        blocks_per_disk=DEFAULT_BLOCKS_PER_DISK,
        n_requests=3_362_505,
        duration_ms=(3 * 3600 + 3 * 60) * 1000.0,
        write_fraction=0.1003,
        multiblock_fraction=0.0213,
        multiblock_mean_extra=15.4,
        max_request_blocks=64,
        disk_zipf=0.42,
        hot_spot_fraction=0.015,
        hot_spot_weight=0.38,
        sequential_prob=0.16,
        rehit_prob=0.60,
        rehit_window=1_200_000,
        stack_median=150_000.0,
        stack_sigma=1.4,
        write_after_read_prob=0.96,
        recent_read_window=800,
        burst_rate_multiplier=10.0,
        burst_fraction=0.35,
        burst_mean_length=100.0,
        seed=19931,
    ).scaled(scale)


def trace2_config(scale: float = 1.0) -> SyntheticTraceConfig:
    """Trace-2-like workload (Table 2, right column).

    69.5 k requests over 10 data disks in 1 h 40 min; 28% writes; 95%
    single-block; strong disk skew; weaker locality with large working
    sets (the ad-hoc query component the paper mentions).
    """
    return SyntheticTraceConfig(
        name="trace2",
        ndisks=10,
        blocks_per_disk=DEFAULT_BLOCKS_PER_DISK,
        n_requests=69_539,
        duration_ms=(1 * 3600 + 40 * 60) * 1000.0,
        write_fraction=0.2826,
        multiblock_fraction=0.0593,
        multiblock_mean_extra=17.7,
        max_request_blocks=64,
        disk_zipf=1.15,
        hot_spot_fraction=0.04,
        hot_spot_weight=0.22,
        sequential_prob=0.10,
        rehit_prob=0.50,
        rehit_window=80_000,
        stack_median=22_000.0,
        stack_sigma=1.1,
        write_after_read_prob=0.55,
        recent_read_window=2_500,
        burst_rate_multiplier=18.0,
        burst_fraction=0.40,
        burst_mean_length=100.0,
        seed=19932,
    ).scaled(scale)


# ---------------------------------------------------------------------------


def _arrival_times(cfg: SyntheticTraceConfig, rng: np.random.Generator) -> np.ndarray:
    """Bursty arrivals: a 2-state (normal/burst) modulated Poisson process.

    A ``burst_fraction`` of requests arrive during burst episodes whose
    rate is ``burst_rate_multiplier`` × the long-run average; episode
    lengths are geometric with mean ``burst_mean_length`` requests.  The
    overall mean interarrival matches ``duration / n_requests``.
    """
    n = cfg.n_requests
    mean_iat = cfg.duration_ms / n
    f, m = cfg.burst_fraction, cfg.burst_rate_multiplier

    if f <= 0.0 or m == 1.0:
        iat = rng.exponential(mean_iat, size=n)
        return np.cumsum(iat)

    # Per-state mean interarrival, preserving the global mean:
    # f * mu_b + (1 - f) * mu_n = mean_iat with mu_b = mean_iat / m.
    mu_b = mean_iat / m
    mu_n = mean_iat * (1.0 - f / m) / (1.0 - f)

    burst_flags = np.empty(n, dtype=bool)
    pos = 0
    in_burst = False
    normal_mean = cfg.burst_mean_length * (1.0 - f) / f
    while pos < n:
        mean_len = cfg.burst_mean_length if in_burst else normal_mean
        length = 1 + rng.geometric(1.0 / max(mean_len, 1.0))
        end = min(pos + length, n)
        burst_flags[pos:end] = in_burst
        pos = end
        in_burst = not in_burst

    iat = rng.exponential(1.0, size=n)
    iat *= np.where(burst_flags, mu_b, mu_n)
    return np.cumsum(iat)


def _request_sizes(
    cfg: SyntheticTraceConfig, rng: np.random.Generator, n: int
) -> np.ndarray:
    """Single-block mostly; multi-block sizes 1 + geometric, clamped."""
    sizes = np.ones(n, dtype=np.int32)
    multi = rng.random(n) < cfg.multiblock_fraction
    count = int(multi.sum())
    if count:
        extra = rng.geometric(1.0 / cfg.multiblock_mean_extra, size=count)
        sizes[multi] = 1 + np.minimum(extra, cfg.max_request_blocks - 1)
    return sizes


def _disk_cdf(cfg: SyntheticTraceConfig, rng: np.random.Generator) -> np.ndarray:
    """Zipf-weighted disk popularity, randomly permuted across disks."""
    ranks = np.arange(1, cfg.ndisks + 1, dtype=np.float64)
    weights = ranks ** (-cfg.disk_zipf)
    rng.shuffle(weights)
    return np.cumsum(weights / weights.sum())


def _va_disk_cdfs(
    cfg: SyntheticTraceConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Per-VA targeted disk popularity: (read CDF, write CDF).

    Each VA's slice of logical disks gets its own permuted Zipf profile
    (the intra-VA skew of the legacy generator); the VA-level split
    follows ``va_weights`` for reads and ``va_weights ** va_write_skew``
    (renormalized) for writes — the hot/cold knob that concentrates
    small writes on the mirrored VA.
    """
    weights = np.array(
        cfg.va_weights if cfg.va_weights else cfg.va_disks, dtype=np.float64
    )
    read_share = weights / weights.sum()
    skewed = read_share ** cfg.va_write_skew
    write_share = skewed / skewed.sum()
    per_va = []
    for nv in cfg.va_disks:
        ranks = np.arange(1, int(nv) + 1, dtype=np.float64)
        zipf = ranks ** (-cfg.disk_zipf)
        rng.shuffle(zipf)
        per_va.append(zipf / zipf.sum())
    read_p = np.concatenate([s * p for s, p in zip(read_share, per_va)])
    write_p = np.concatenate([s * p for s, p in zip(write_share, per_va)])
    return np.cumsum(read_p), np.cumsum(write_p)


class _WorkloadState:
    """Mutable generator state carried across requests (and chunks).

    Holds everything the address loop and the chunked arrival process
    thread from one request to the next: per-disk cursors and hot-region
    origins, the temporal-locality ring buffers, the arrival clock and
    the burst-episode position.  The full-trace and streaming paths share
    this state (and :func:`_fill_addresses`), so their per-request
    arithmetic is the same code.
    """

    __slots__ = (
        "hot_size",
        "hot_start",
        "cursors",
        "hw_origins",
        "history",
        "hist_pos",
        "recent_reads",
        "rr_pos",
        "t_last",
        "in_burst",
        "burst_left",
    )

    def __init__(
        self,
        cfg: SyntheticTraceConfig,
        hot_start: list,
        cursors: list,
        hw_origins: list,
    ) -> None:
        bpd = cfg.blocks_per_disk
        self.hot_size = max(1, int(bpd * cfg.hot_spot_fraction))
        self.hot_start = hot_start
        self.cursors = cursors
        self.hw_origins = hw_origins
        self.history: list[int] = []  # recent block addresses (ring buffer)
        self.hist_pos = 0
        self.recent_reads: list[int] = []
        self.rr_pos = 0
        # Arrival-process carry (used by the streaming path only).
        self.t_last = 0.0
        self.in_burst = False
        self.burst_left = 0

    @classmethod
    def draw(cls, cfg: SyntheticTraceConfig, rng: np.random.Generator) -> "_WorkloadState":
        """Draw the per-disk state the way :func:`generate_trace` does."""
        bpd = cfg.blocks_per_disk
        hot_size = max(1, int(bpd * cfg.hot_spot_fraction))
        hot_start = (rng.random(cfg.ndisks) * (bpd - hot_size)).astype(np.int64)
        cursors = (rng.random(cfg.ndisks) * bpd).astype(np.int64)
        hw_origins = np.zeros(0, dtype=np.int64)
        if cfg.hot_write_runs:
            span = cfg.ndisks * bpd - cfg.hot_write_run_blocks
            hw_origins = (rng.random(cfg.hot_write_runs) * span).astype(np.int64)
        return cls(cfg, hot_start.tolist(), cursors.tolist(), hw_origins.tolist())


def _fill_addresses(
    cfg: SyntheticTraceConfig,
    state: _WorkloadState,
    sizes_l: list,
    is_write_l: list,
    u_mode_l: list,
    u_hot_l: list,
    u_pos_l: list,
    u_war_l: list,
    u_hw_l: list,
    pick_l: list,
    stack_l: list,
    disks_l: list,
) -> list:
    """The address loop: one logical address per request, given the
    pre-drawn random streams, mutating *state* in place.

    Inputs are plain Python lists — a scalar ndarray index allocates a
    numpy scalar each access, which would dominate the loop's cost, and
    Python float arithmetic is the same IEEE double arithmetic as the
    numpy scalar ops it replaces, so every address is bit-identical.
    """
    n = len(sizes_l)
    bpd = cfg.blocks_per_disk
    hot_size = state.hot_size
    hot_start_l = state.hot_start
    cursors_l = state.cursors
    hw_origins_l = state.hw_origins
    n_hw = len(hw_origins_l)
    history = state.history
    hist_cap = cfg.rehit_window
    hist_pos = state.hist_pos
    recent_reads = state.recent_reads
    rr_cap = cfg.recent_read_window
    rr_pos = state.rr_pos
    lblocks = [0] * n

    rehit_p = cfg.rehit_prob
    seq_p = cfg.rehit_prob + cfg.sequential_prob
    war_p = cfg.write_after_read_prob
    hw_w = cfg.hot_write_weight
    hw_run = cfg.hot_write_run_blocks
    hot_w = cfg.hot_spot_weight

    for i in range(n):
        size = sizes_l[i]
        addr = -1

        if is_write_l[i] and size == 1 and n_hw and u_hw_l[i] < hw_w:
            # Update-intensive page: hammer a short hot run.
            run = int(u_hw_l[i] / hw_w * n_hw)
            addr = hw_origins_l[min(run, n_hw - 1)] + int(u_pos_l[i] * hw_run)
        elif (
            is_write_l[i]
            and size == 1
            and u_war_l[i] < war_p
            and recent_reads
        ):
            # DB2 pattern: update a block the transaction just read.
            addr = recent_reads[int(pick_l[i] * len(recent_reads))]
        elif (
            u_mode_l[i] < rehit_p
            and history
            and size == 1
            and int(stack_l[i]) < len(history)
        ):
            # Temporal re-reference at a lognormal stack distance;
            # history is a ring buffer and hist_pos-1 is the most recent.
            depth = int(stack_l[i])
            addr = history[(hist_pos - 1 - depth) % len(history)]
        else:
            disk = disks_l[i]
            base = disk * bpd
            if u_mode_l[i] < seq_p and size == 1:
                # Sequential continuation preserves seek affinity.
                cur = (cursors_l[disk] + 1) % bpd
                cursors_l[disk] = cur
                addr = base + cur
            elif u_hot_l[i] < hot_w:
                addr = base + hot_start_l[disk] + int(u_pos_l[i] * hot_size)
            else:
                addr = base + int(u_pos_l[i] * bpd)
                cursors_l[disk] = addr - base

        # Clamp so the request stays inside its logical disk.
        disk = addr // bpd
        limit = (disk + 1) * bpd
        if addr + size > limit:
            addr = limit - size

        lblocks[i] = addr

        # Update histories.
        if len(history) < hist_cap:
            history.append(addr)
            hist_pos = len(history) % hist_cap
        else:
            history[hist_pos] = addr
            hist_pos = (hist_pos + 1) % hist_cap
        if not is_write_l[i]:
            if len(recent_reads) < rr_cap:
                recent_reads.append(addr)
                rr_pos = len(recent_reads) % rr_cap
            else:
                recent_reads[rr_pos] = addr
                rr_pos = (rr_pos + 1) % rr_cap

    state.hist_pos = hist_pos
    state.rr_pos = rr_pos
    return lblocks


def generate_trace(cfg: SyntheticTraceConfig) -> Trace:
    """Generate a :class:`~repro.trace.record.Trace` from *cfg*.

    Deterministic for a given config (including the seed).
    """
    rng = np.random.default_rng(cfg.seed)
    n = cfg.n_requests
    bpd = cfg.blocks_per_disk

    times = _arrival_times(cfg, rng)
    sizes = _request_sizes(cfg, rng, n)
    is_write = rng.random(n) < cfg.write_fraction
    if cfg.va_disks:
        read_cdf, write_cdf = _va_disk_cdfs(cfg, rng)
    else:
        disk_cdf = _disk_cdf(cfg, rng)

    # Pre-drawn random streams for the address loop.
    u_mode = rng.random(n)  # rehit / sequential / fresh choice
    u_disk = rng.random(n)
    u_hot = rng.random(n)
    u_pos = rng.random(n)
    u_war = rng.random(n)  # write-after-read
    # Lognormal stack distances for re-references.
    stack_mu = math.log(max(cfg.stack_median, 1.0))
    stack_draw = np.exp(rng.normal(stack_mu, cfg.stack_sigma, size=n))
    pick_idx = rng.random(n)

    # Per-disk state: hot-region origin and sequential cursor (plus the
    # update-intensive page runs), drawn in the historical order.
    state = _WorkloadState.draw(cfg, rng)
    u_hw = rng.random(n)

    if cfg.va_disks:
        disks_of = np.where(
            is_write,
            np.searchsorted(write_cdf, u_disk),
            np.searchsorted(read_cdf, u_disk),
        )
    else:
        disks_of = np.searchsorted(disk_cdf, u_disk)

    lblocks = _fill_addresses(
        cfg,
        state,
        sizes.tolist(),
        is_write.tolist(),
        u_mode.tolist(),
        u_hot.tolist(),
        u_pos.tolist(),
        u_war.tolist(),
        u_hw.tolist(),
        pick_idx.tolist(),
        stack_draw.tolist(),
        disks_of.tolist(),
    )

    records = np.empty(n, dtype=TRACE_DTYPE)
    records["time"] = times
    records["lblock"] = lblocks
    records["nblocks"] = sizes
    records["is_write"] = is_write
    return Trace(records, cfg.ndisks, bpd, name=cfg.name)


# ---------------------------------------------------------------------------
# Streaming generation
# ---------------------------------------------------------------------------


def _chunk_arrivals(
    cfg: SyntheticTraceConfig,
    rng: np.random.Generator,
    state: _WorkloadState,
    count: int,
) -> np.ndarray:
    """Next *count* arrival times, carrying the burst episode and clock.

    The same 2-state modulated Poisson process as :func:`_arrival_times`,
    generated incrementally: the current episode's phase and remaining
    length live in *state*, so chunk boundaries fall anywhere within an
    episode without changing the process.
    """
    mean_iat = cfg.duration_ms / cfg.n_requests
    f, m = cfg.burst_fraction, cfg.burst_rate_multiplier

    iat = rng.exponential(1.0, size=count)
    if f <= 0.0 or m == 1.0:
        iat *= mean_iat
    else:
        mu_b = mean_iat / m
        mu_n = mean_iat * (1.0 - f / m) / (1.0 - f)
        flags = np.empty(count, dtype=bool)
        normal_mean = cfg.burst_mean_length * (1.0 - f) / f
        pos = 0
        while pos < count:
            if state.burst_left == 0:
                mean_len = cfg.burst_mean_length if state.in_burst else normal_mean
                state.burst_left = 1 + rng.geometric(1.0 / max(mean_len, 1.0))
            take = min(state.burst_left, count - pos)
            flags[pos : pos + take] = state.in_burst
            state.burst_left -= take
            pos += take
            if state.burst_left == 0:
                state.in_burst = not state.in_burst
        iat *= np.where(flags, mu_b, mu_n)

    times = state.t_last + np.cumsum(iat)
    state.t_last = float(times[-1])
    return times


class TraceStream:
    """Chunked synthetic trace source with O(chunk) resident memory.

    Yields the workload as a sequence of :data:`TRACE_DTYPE` record
    arrays instead of materializing all ``n_requests`` at once, so
    multi-million-request campaigns run in bounded memory and numpy
    block generation overlaps simulation.

    Determinism: a stream is bit-for-bit reproducible for a given
    ``(config, chunk_requests)`` pair, and :meth:`chunks` is
    re-iterable — every iteration restarts the generator from the seed
    and produces identical records.  The random streams are drawn
    per-chunk, so the request sequence is a *different* (equally
    calibrated) realization than :func:`generate_trace`'s whole-trace
    draw order — use one source or the other for a given experiment,
    not both.  :meth:`materialize` builds the equivalent
    :class:`~repro.trace.record.Trace` (O(n) memory, for tests and
    cross-checks); a simulation fed the stream and one fed that
    materialization see identical requests.
    """

    def __init__(self, config: SyntheticTraceConfig, chunk_requests: int = 65536) -> None:
        if chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        self.config = config
        self.chunk_requests = int(chunk_requests)
        self.name = config.name
        self.ndisks = config.ndisks
        self.blocks_per_disk = config.blocks_per_disk
        self.n_requests = config.n_requests
        #: Nominal workload duration (the arrival process targets it;
        #: the realized last arrival differs by sampling noise).
        self.duration_ms = config.duration_ms

    def __len__(self) -> int:
        return self.n_requests

    def chunks(self):
        """Yield :data:`TRACE_DTYPE` record arrays of ``chunk_requests``
        rows (the last one shorter), restarting from the seed."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if cfg.va_disks:
            read_cdf, write_cdf = _va_disk_cdfs(cfg, rng)
        else:
            read_cdf, write_cdf = _disk_cdf(cfg, rng), None
        state = _WorkloadState.draw(cfg, rng)

        stack_mu = math.log(max(cfg.stack_median, 1.0))
        remaining = cfg.n_requests
        while remaining > 0:
            count = min(self.chunk_requests, remaining)
            remaining -= count

            times = _chunk_arrivals(cfg, rng, state, count)
            sizes = _request_sizes(cfg, rng, count)
            is_write = rng.random(count) < cfg.write_fraction
            u_mode = rng.random(count)
            u_disk = rng.random(count)
            u_hot = rng.random(count)
            u_pos = rng.random(count)
            u_war = rng.random(count)
            stack_draw = np.exp(rng.normal(stack_mu, cfg.stack_sigma, size=count))
            pick_idx = rng.random(count)
            u_hw = rng.random(count)

            if write_cdf is not None:
                disks_of = np.where(
                    is_write,
                    np.searchsorted(write_cdf, u_disk),
                    np.searchsorted(read_cdf, u_disk),
                )
            else:
                disks_of = np.searchsorted(read_cdf, u_disk)

            lblocks = _fill_addresses(
                cfg,
                state,
                sizes.tolist(),
                is_write.tolist(),
                u_mode.tolist(),
                u_hot.tolist(),
                u_pos.tolist(),
                u_war.tolist(),
                u_hw.tolist(),
                pick_idx.tolist(),
                stack_draw.tolist(),
                disks_of.tolist(),
            )

            records = np.empty(count, dtype=TRACE_DTYPE)
            records["time"] = times
            records["lblock"] = lblocks
            records["nblocks"] = sizes
            records["is_write"] = is_write
            yield records

    def materialize(self) -> Trace:
        """Concatenate all chunks into a :class:`~repro.trace.record.Trace`.

        O(n) memory — defeats the point of streaming; exists so tests
        can prove stream-fed and array-fed runs are bit-identical.
        """
        records = np.concatenate(list(self.chunks()))
        return Trace(
            records, self.ndisks, self.blocks_per_disk, name=self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceStream {self.name!r}: {self.n_requests} requests "
            f"in chunks of {self.chunk_requests}>"
        )
