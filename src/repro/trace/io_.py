"""Trace file formats.

Two interchange formats:

* **npz** — compact binary (NumPy archive) with metadata; lossless.
* **text** — the paper's raw format: one line per *block*, with the time
  delta since the previous request, zeroed for continuation blocks of a
  multi-block request ("The time field is set to zero when both accesses
  are part of the same multiblock request", §3.1).
"""

from __future__ import annotations

import io
import os
from typing import TextIO, Union

import numpy as np

from repro.trace.record import TRACE_DTYPE, Trace

__all__ = ["save_npz", "load_npz", "write_paper_format", "read_paper_format"]


def save_npz(trace: Trace, path: Union[str, os.PathLike]) -> None:
    """Save a trace as a compressed NumPy archive."""
    np.savez_compressed(
        path,
        records=trace.records,
        ndisks=np.int64(trace.ndisks),
        blocks_per_disk=np.int64(trace.blocks_per_disk),
        name=np.str_(trace.name),
    )


def load_npz(path: Union[str, os.PathLike]) -> Trace:
    """Load a trace saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        return Trace(
            data["records"],
            int(data["ndisks"]),
            int(data["blocks_per_disk"]),
            name=str(data["name"]),
        )


def write_paper_format(trace: Trace, fh: TextIO) -> None:
    """Write in the paper's per-block format.

    Columns: ``delta_ms  absolute_block  r|w``.  Continuation blocks of a
    multi-block request carry a zero delta.
    """
    prev_time = 0.0
    for rec in trace.records:
        delta = float(rec["time"]) - prev_time
        prev_time = float(rec["time"])
        rw = "w" if rec["is_write"] else "r"
        fh.write(f"{delta:.6f} {int(rec['lblock'])} {rw}\n")
        for extra in range(1, int(rec["nblocks"])):
            fh.write(f"0.000000 {int(rec['lblock']) + extra} {rw}\n")


def read_paper_format(
    fh: TextIO, ndisks: int, blocks_per_disk: int, name: str = "trace"
) -> Trace:
    """Parse the paper's per-block format back into a :class:`Trace`.

    Consecutive lines with zero delta and consecutive block numbers of
    the same direction are coalesced into one multi-block request.
    """
    times: list[float] = []
    lblocks: list[int] = []
    nblocks: list[int] = []
    writes: list[bool] = []
    now = 0.0
    for line in fh:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"malformed trace line: {line!r}")
        delta, block, rw = float(parts[0]), int(parts[1]), parts[2]
        if rw not in ("r", "w"):
            raise ValueError(f"bad direction {rw!r} in line {line!r}")
        now += delta
        is_write = rw == "w"
        if (
            delta == 0.0
            and lblocks
            and writes[-1] == is_write
            and lblocks[-1] + nblocks[-1] == block
        ):
            nblocks[-1] += 1
        else:
            times.append(now)
            lblocks.append(block)
            nblocks.append(1)
            writes.append(is_write)

    records = np.empty(len(times), dtype=TRACE_DTYPE)
    records["time"] = times
    records["lblock"] = lblocks
    records["nblocks"] = nblocks
    records["is_write"] = writes
    return Trace(records, ndisks, blocks_per_disk, name=name)


def roundtrip_text(trace: Trace) -> Trace:
    """Write to text and read back (convenience for tests)."""
    buf = io.StringIO()
    write_paper_format(trace, buf)
    buf.seek(0)
    return read_paper_format(buf, trace.ndisks, trace.blocks_per_disk, trace.name)
