"""Trace toolbox CLI.

Usage::

    python -m repro.trace generate --preset trace2 --scale 0.5 --out t2.npz
    python -m repro.trace stats t2.npz
    python -m repro.trace convert t2.npz t2.txt      # paper text format
    python -m repro.trace convert t2.txt t2b.npz --ndisks 10
    python -m repro.trace speed t2.npz t2fast.npz --factor 2
"""

from __future__ import annotations

import argparse
import sys

from repro.trace import generate_trace, scale_speed, trace1_config, trace2_config
from repro.trace.io_ import load_npz, read_paper_format, save_npz, write_paper_format
from repro.trace.synthetic import DEFAULT_BLOCKS_PER_DISK

__all__ = ["main"]


def _load(path: str, ndisks: int | None, bpd: int) -> "Trace":
    if path.endswith(".npz"):
        return load_npz(path)
    if ndisks is None:
        raise SystemExit("--ndisks is required to read text-format traces")
    with open(path) as fh:
        return read_paper_format(fh, ndisks, bpd, name=path)


def _save(trace, path: str) -> None:
    if path.endswith(".npz"):
        save_npz(trace, path)
    else:
        with open(path, "w") as fh:
            write_paper_format(trace, fh)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace", description="Trace toolbox."
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic trace")
    gen.add_argument("--preset", choices=["trace1", "trace2"], required=True)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--out", required=True)

    st = sub.add_parser("stats", help="print Table-2-style statistics")
    st.add_argument("path")
    st.add_argument("--ndisks", type=int)
    st.add_argument("--blocks-per-disk", type=int, default=DEFAULT_BLOCKS_PER_DISK)

    cv = sub.add_parser("convert", help="convert between npz and text formats")
    cv.add_argument("src")
    cv.add_argument("dst")
    cv.add_argument("--ndisks", type=int)
    cv.add_argument("--blocks-per-disk", type=int, default=DEFAULT_BLOCKS_PER_DISK)

    sp = sub.add_parser("speed", help="apply a trace-speed factor (§4.2.4)")
    sp.add_argument("src")
    sp.add_argument("dst")
    sp.add_argument("--factor", type=float, required=True)
    sp.add_argument("--ndisks", type=int)
    sp.add_argument("--blocks-per-disk", type=int, default=DEFAULT_BLOCKS_PER_DISK)

    args = parser.parse_args(argv)

    if args.cmd == "generate":
        cfg = (trace1_config if args.preset == "trace1" else trace2_config)(args.scale)
        trace = generate_trace(cfg)
        _save(trace, args.out)
        print(f"wrote {trace} to {args.out}")
        return 0

    if args.cmd == "stats":
        trace = _load(args.path, args.ndisks, args.blocks_per_disk)
        print(trace.stats().as_table())
        return 0

    if args.cmd == "convert":
        trace = _load(args.src, args.ndisks, args.blocks_per_disk)
        _save(trace, args.dst)
        print(f"converted {args.src} -> {args.dst} ({len(trace)} requests)")
        return 0

    if args.cmd == "speed":
        trace = _load(args.src, args.ndisks, args.blocks_per_disk)
        _save(scale_speed(trace, args.factor), args.dst)
        print(f"scaled {args.src} by {args.factor}x -> {args.dst}")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
