"""Trace data model and Table-2-style characterisation.

A trace is a time-ordered sequence of I/O requests against a *logical*
database address space of ``ndisks × blocks_per_disk`` 4 KB blocks (the
data disks of the Base organization).  Requests are stored in a compact
NumPy structured array; multi-block requests are single records with
``nblocks > 1`` (the paper's raw format repeats entries with a zero time
delta — :mod:`repro.trace.io_` converts between the two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["TRACE_DTYPE", "Trace", "TraceStats"]

#: time: arrival in ms; lblock: first logical block; nblocks: request
#: length in blocks; is_write: request direction.
TRACE_DTYPE = np.dtype(
    [
        ("time", np.float64),
        ("lblock", np.int64),
        ("nblocks", np.int32),
        ("is_write", np.bool_),
    ]
)


@dataclass(frozen=True)
class TraceStats:
    """The characteristics the paper reports in Table 2, plus skew."""

    duration_ms: float
    ndisks: int
    n_ios: int
    blocks_transferred: int
    single_block_reads: int
    single_block_writes: int
    multiblock_reads: int
    multiblock_writes: int
    write_fraction: float
    single_block_fraction: float
    #: Coefficient of variation of per-disk access counts (skew measure).
    disk_access_cv: float
    #: Share of accesses landing on the busiest 10% of disks.
    top_decile_share: float

    def as_table(self) -> str:
        """Render in the shape of the paper's Table 2."""
        rows = [
            ("Duration", f"{self.duration_ms / 60000.0:.1f} min"),
            ("# of disks", f"{self.ndisks}"),
            ("# of I/O accesses", f"{self.n_ios:,}"),
            ("# of blocks transferred", f"{self.blocks_transferred:,}"),
            ("# of single block reads", f"{self.single_block_reads:,}"),
            ("# of single block writes", f"{self.single_block_writes:,}"),
            ("# of multiblock reads", f"{self.multiblock_reads:,}"),
            ("# of multiblock writes", f"{self.multiblock_writes:,}"),
            ("Write fraction", f"{self.write_fraction:.1%}"),
            ("Single-block fraction", f"{self.single_block_fraction:.1%}"),
            ("Disk access CV", f"{self.disk_access_cv:.3f}"),
            ("Top-decile share", f"{self.top_decile_share:.1%}"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


class Trace:
    """A time-ordered I/O request trace over a logical database.

    Parameters
    ----------
    records:
        Structured array with :data:`TRACE_DTYPE` fields, sorted by time.
    ndisks:
        Number of logical (Base-organization data) disks addressed.
    blocks_per_disk:
        Size of each logical disk in blocks.
    name:
        Label for reports.
    """

    def __init__(
        self,
        records: np.ndarray,
        ndisks: int,
        blocks_per_disk: int,
        name: str = "trace",
    ) -> None:
        records = np.asarray(records)
        if records.dtype != TRACE_DTYPE:
            raise ValueError(f"records must have dtype {TRACE_DTYPE}")
        if ndisks < 1 or blocks_per_disk < 1:
            raise ValueError("ndisks and blocks_per_disk must be positive")
        if len(records):
            # NaN compares false against everything, so the ordering and
            # sign checks below would silently pass a poisoned trace.
            if not np.isfinite(records["time"]).all():
                raise ValueError("arrival times must be finite")
            if np.any(np.diff(records["time"]) < 0):
                raise ValueError("records must be sorted by time")
            if records["time"][0] < 0:
                raise ValueError("negative arrival time")
            if np.any(records["nblocks"] < 1):
                raise ValueError("nblocks must be >= 1")
            last = records["lblock"] + records["nblocks"]
            if np.any(records["lblock"] < 0) or np.any(last > ndisks * blocks_per_disk):
                raise ValueError("request outside the logical address space")
        self.records = records
        self.ndisks = ndisks
        self.blocks_per_disk = blocks_per_disk
        self.name = name

    # -- basic shape -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[np.void]:
        return iter(self.records)

    @property
    def logical_blocks(self) -> int:
        """Size of the logical address space."""
        return self.ndisks * self.blocks_per_disk

    @property
    def duration_ms(self) -> float:
        """Arrival time of the last request."""
        return float(self.records["time"][-1]) if len(self.records) else 0.0

    @property
    def times(self) -> np.ndarray:
        return self.records["time"]

    @property
    def lblocks(self) -> np.ndarray:
        return self.records["lblock"]

    @property
    def nblocks(self) -> np.ndarray:
        return self.records["nblocks"]

    @property
    def is_write(self) -> np.ndarray:
        return self.records["is_write"]

    def logical_disks(self) -> np.ndarray:
        """Logical (Base) disk index of each request's first block."""
        return self.records["lblock"] // self.blocks_per_disk

    # -- characterisation ---------------------------------------------------------
    def stats(self) -> TraceStats:
        """Compute the Table-2 characteristics of this trace."""
        r = self.records
        n = len(r)
        if n == 0:
            raise ValueError("empty trace has no statistics")
        single = r["nblocks"] == 1
        writes = r["is_write"]
        counts = self.per_disk_access_counts()
        mean = counts.mean()
        cv = float(counts.std() / mean) if mean > 0 else 0.0
        k = max(1, int(round(self.ndisks * 0.1)))
        top = np.sort(counts)[::-1][:k].sum()
        return TraceStats(
            duration_ms=self.duration_ms,
            ndisks=self.ndisks,
            n_ios=n,
            blocks_transferred=int(r["nblocks"].sum()),
            single_block_reads=int(np.sum(single & ~writes)),
            single_block_writes=int(np.sum(single & writes)),
            multiblock_reads=int(np.sum(~single & ~writes)),
            multiblock_writes=int(np.sum(~single & writes)),
            write_fraction=float(np.mean(writes)),
            single_block_fraction=float(np.mean(single)),
            disk_access_cv=cv,
            top_decile_share=float(top / counts.sum()) if counts.sum() else 0.0,
        )

    def per_disk_access_counts(self) -> np.ndarray:
        """Block accesses per logical disk (the Base histogram of Fig. 6).

        Multi-block requests contribute one access per touched block; the
        rare request spanning two logical disks is attributed block by
        block.
        """
        counts = np.zeros(self.ndisks, dtype=np.int64)
        bpd = self.blocks_per_disk
        start_disk = self.records["lblock"] // bpd
        end_disk = (self.records["lblock"] + self.records["nblocks"] - 1) // bpd
        within = start_disk == end_disk
        np.add.at(counts, start_disk[within], self.records["nblocks"][within].astype(np.int64))
        for rec in self.records[~within]:
            for b in range(rec["lblock"], rec["lblock"] + rec["nblocks"]):
                counts[b // bpd] += 1
        return counts

    def interarrival_times(self) -> np.ndarray:
        """Interarrival times in ms."""
        return np.diff(self.records["time"])

    def __repr__(self) -> str:
        return (
            f"<Trace {self.name!r}: {len(self)} requests, "
            f"{self.ndisks} disks, {self.duration_ms / 1000.0:.1f} s>"
        )
