"""I/O trace infrastructure.

The paper drives its simulations with two proprietary traces collected at
IBM DB2 customer sites.  Those traces are not available, so this package
provides (a) the trace data model and Table-2-style characterisation, and
(b) a calibrated synthetic generator
(:mod:`repro.trace.synthetic`) whose presets reproduce every workload
characteristic the paper reports: request mix, write fraction,
multi-block size, per-disk skew, spatial locality (seek affinity),
temporal locality (cache-hit behaviour) and the DB2 read-before-write
pattern.
"""

from repro.trace.record import Trace, TraceStats, TRACE_DTYPE
from repro.trace.synthetic import (
    SyntheticTraceConfig,
    generate_trace,
    trace1_config,
    trace2_config,
)
from repro.trace.transform import scale_speed, slice_arrays, clip_requests

__all__ = [
    "TRACE_DTYPE",
    "SyntheticTraceConfig",
    "Trace",
    "TraceStats",
    "clip_requests",
    "generate_trace",
    "scale_speed",
    "slice_arrays",
    "trace1_config",
    "trace2_config",
]
