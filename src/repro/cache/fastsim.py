"""Fast cache-only simulation for hit-ratio studies (Figs. 11 and 15).

Hit ratios depend only on the reference stream and the cache policy, not
on disk timing, so they can be measured with a lightweight LRU pass over
the trace — orders of magnitude faster than the full discrete-event
simulation and exactly matching its cache decisions.

The model follows §3.4: one cache per array; multiblock accesses hit
only if all their blocks are resident; parity organizations retain old
copies of dirtied blocks; the periodic destage cleans dirty blocks and
releases old copies; RAID4 parity caching additionally holds pending
parity blocks in the cache between destage and spool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.cache.lru import BlockState, LRUCache
from repro.layout.common import Layout
from repro.trace.record import Trace

__all__ = ["CacheHitStats", "simulate_hit_ratios"]

CacheMode = Literal["plain", "parity", "raid4pc"]


@dataclass(frozen=True)
class CacheHitStats:
    """Aggregate cache outcomes over all arrays of a run."""

    read_hits: int
    read_misses: int
    write_hits: int
    write_misses: int
    dirty_replacements: int
    destage_cycles: int
    #: Dirty blocks cleaned by the periodic destage (not counting the
    #: synchronous writebacks in ``dirty_replacements``).
    destaged_blocks: int = 0
    #: RAID4 parity-caching mode: parity blocks spooled to the dedicated
    #: parity disk (one per distinct buffered parity block per cycle).
    spooled_parity_blocks: int = 0

    @property
    def read_hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    @property
    def write_hit_ratio(self) -> float:
        total = self.write_hits + self.write_misses
        return self.write_hits / total if total else 0.0


def _make_room(cache: LRUCache, needed: int, counters: dict) -> None:
    """Evict from the LRU head until *needed* slots are free.

    A dirty LRU head is written back on the spot (a synchronous
    writeback — the event the destage process exists to avoid); its old
    copy is released in the process.
    """
    while cache.free_slots < needed:
        head = cache.lru_block()
        if head is None:  # pragma: no cover - capacity >= needed always
            raise RuntimeError("cache capacity exhausted by reservations")
        lblock, entry = head
        if entry.state is BlockState.DIRTY:
            counters["dirty_replacements"] += 1
            if not entry.destaging:
                cache.begin_destage(lblock)
            cache.finish_destage(lblock)
        cache.evict(lblock)


def simulate_hit_ratios(
    trace: Trace,
    n: int,
    cache_blocks: int,
    mode: CacheMode = "plain",
    destage_period_ms: float = 1000.0,
    layout: Layout | None = None,
) -> CacheHitStats:
    """Measure read/write hit ratios of the cached organizations.

    Parameters
    ----------
    trace:
        The workload (logical addresses).
    n:
        Array size ``N`` — the trace's logical disks are partitioned
        into arrays of ``N``, each with its own cache.
    cache_blocks:
        Cache capacity per array, in blocks.
    mode:
        ``plain`` (Base/Mirror — no old copies), ``parity``
        (RAID5/Parity Striping — old copies retained), or ``raid4pc``
        (parity organization plus buffered parity blocks; requires
        *layout* to locate parity blocks).
    destage_period_ms:
        Period of the background destage process.
    """
    if trace.ndisks % n:
        raise ValueError(f"trace's {trace.ndisks} disks not divisible by N={n}")
    if mode == "raid4pc" and layout is None:
        raise ValueError("raid4pc mode requires the array layout")
    track_old = mode in ("parity", "raid4pc")
    narrays = trace.ndisks // n
    array_blocks = n * trace.blocks_per_disk

    caches = [LRUCache(cache_blocks, track_old=track_old) for _ in range(narrays)]
    pending_parity: list[set[int]] = [set() for _ in range(narrays)]
    counters = {
        "dirty_replacements": 0,
        "destage_cycles": 0,
        "destaged_blocks": 0,
        "spooled_parity_blocks": 0,
        # Per-*request* hit accounting (a multiblock access hits only if
        # all of its blocks are resident, §3.4).
        "read_hits": 0,
        "read_misses": 0,
        "write_hits": 0,
        "write_misses": 0,
    }
    next_destage = destage_period_ms

    records = trace.records
    times = records["time"]
    lblocks = records["lblock"]
    nblocks = records["nblocks"]
    is_write = records["is_write"]

    for i in range(len(records)):
        t = times[i]
        while t >= next_destage:
            # Periodic destage: clean everything, release old copies,
            # swap the pending parity set (previous cycle's parity has
            # been spooled by now, this cycle's enters the cache).
            for a, cache in enumerate(caches):
                # The previous cycle's buffered parity has been spooled
                # to the parity disk by now; release its slots first.
                if mode == "raid4pc" and pending_parity[a]:
                    counters["spooled_parity_blocks"] += len(pending_parity[a])
                    cache.release_slots(len(pending_parity[a]))
                    pending_parity[a] = set()
                for lb in cache.dirty_blocks(include_destaging=True):
                    counters["destaged_blocks"] += 1
                    entry = cache.get(lb)
                    if mode == "raid4pc":
                        local = lb - a * array_blocks
                        parity = layout.parity_of(local)
                        if parity.block not in pending_parity[a]:
                            if cache.reserve_slots(1):
                                pending_parity[a].add(parity.block)
                    if entry is not None and not entry.destaging:
                        cache.begin_destage(lb)
                    cache.finish_destage(lb)
            counters["destage_cycles"] += 1
            next_destage += destage_period_ms

        lb = int(lblocks[i])
        size = int(nblocks[i])
        a = lb // array_blocks
        cache = caches[a]
        blocks = range(lb, lb + size)

        if is_write[i]:
            all_present = all(b in cache for b in blocks)
            counters["write_hits" if all_present else "write_misses"] += 1
            for b in blocks:
                entry = cache.get(b)
                needs_old = (
                    track_old and entry is not None and entry.state is BlockState.CLEAN
                )
                if entry is None or needs_old:
                    _make_room(cache, 1, counters)
                cache.write(b)
        else:
            if cache.probe_read(list(blocks)):
                counters["read_hits"] += 1
            else:
                counters["read_misses"] += 1
                for b in blocks:
                    if cache.get(b) is None:
                        _make_room(cache, 1, counters)
                        cache.insert_clean(b)
                    else:
                        cache.touch(b)

    return CacheHitStats(
        read_hits=counters["read_hits"],
        read_misses=counters["read_misses"],
        write_hits=counters["write_hits"],
        write_misses=counters["write_misses"],
        dirty_replacements=counters["dirty_replacements"],
        destage_cycles=counters["destage_cycles"],
        destaged_blocks=counters["destaged_blocks"],
        spooled_parity_blocks=counters["spooled_parity_blocks"],
    )
