"""LRU block cache with dirty and old-data accounting.

The cache stores logical 4 KB blocks.  Each resident block is CLEAN
(matches disk) or DIRTY (newer than disk).  In parity organizations a
block dirtied *in place* keeps a copy of its old contents ("the old data
are kept in the cache to save the extra rotation needed to read the old
data when writing the block back to disk", §3.4); the copy occupies one
extra cache slot until the block is destaged.  RAID4 parity caching
additionally reserves slots for buffered parity deltas via
:meth:`LRUCache.reserve_slots`.

Occupancy invariant::

    len(entries) + (# old copies) + reserved_slots <= capacity

The cache itself never blocks; controllers consult :meth:`free_slots`
and perform evictions/waits before inserting.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["BlockState", "CacheEntry", "LRUCache"]


class BlockState(enum.Enum):
    """Consistency state of a cached block."""

    CLEAN = "clean"
    DIRTY = "dirty"


@dataclass
class CacheEntry:
    """Per-block cache metadata."""

    state: BlockState
    #: True if the pre-modification contents are retained alongside
    #: (costs one extra slot until destage completes).
    has_old: bool = False
    #: True while a destage write for this block is in flight.
    destaging: bool = False
    #: Dirtied again after the in-flight destage snapshot was taken.
    redirtied: bool = False


class LRUCache:
    """LRU cache over logical block numbers.

    Parameters
    ----------
    capacity_blocks:
        Total slots (e.g. 16 MB / 4 KB = 4096).
    track_old:
        Retain old contents of blocks dirtied in place (parity
        organizations).
    """

    def __init__(self, capacity_blocks: int, track_old: bool = False) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity must be >= 1 block")
        self.capacity = capacity_blocks
        self.track_old = track_old
        self._entries: OrderedDict[int, CacheEntry] = OrderedDict()
        self._dirty: set[int] = set()
        self._old_copies = 0
        self._reserved = 0
        #: Optional validation tap (``repro.validate``): an object with
        #: ``on_cache_op(cache, op, arg)`` called after every mutation.
        self.probe = None
        # Statistics.  Hit/miss counters are maintained by the cache's
        # *owner* at request granularity (a multiblock access is one hit
        # or one miss, §3.4) — the per-block mutation methods below do
        # not touch them.
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    # -- occupancy ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lblock: int) -> bool:
        return lblock in self._entries

    @property
    def occupancy(self) -> int:
        """Slots in use: blocks + old copies + reservations."""
        return len(self._entries) + self._old_copies + self._reserved

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    @property
    def old_copies(self) -> int:
        """Old-contents copies currently held."""
        return self._old_copies

    @property
    def reserved_slots(self) -> int:
        return self._reserved

    def reserve_slots(self, k: int = 1) -> bool:
        """Reserve *k* slots (parity deltas); False if they don't fit."""
        if k < 0:
            raise ValueError("k must be >= 0")
        if self.free_slots < k:
            return False
        self._reserved += k
        if self.probe is not None:
            self.probe.on_cache_op(self, "reserve", k)
        return True

    def release_slots(self, k: int = 1) -> None:
        """Release previously reserved slots."""
        if k < 0 or k > self._reserved:
            raise ValueError(f"cannot release {k} of {self._reserved} reserved slots")
        self._reserved -= k
        if self.probe is not None:
            self.probe.on_cache_op(self, "release", k)

    # -- lookups ---------------------------------------------------------------
    def get(self, lblock: int) -> Optional[CacheEntry]:
        """Entry for *lblock* without touching LRU order."""
        return self._entries.get(lblock)

    def touch(self, lblock: int) -> bool:
        """Move a resident block to MRU without counting a hit."""
        if lblock not in self._entries:
            return False
        self._entries.move_to_end(lblock)
        return True

    def probe_read(self, lblocks) -> bool:
        """Multi-block hit test: a hit only if *all* blocks are resident
        (the paper's rule for multiblock accesses); touches on hit."""
        if not all(b in self._entries for b in lblocks):
            return False
        for b in lblocks:
            self._entries.move_to_end(b)
        return True

    # -- mutation ----------------------------------------------------------------
    def insert_clean(self, lblock: int) -> None:
        """Insert a block fetched from disk.  Requires a free slot."""
        if lblock in self._entries:
            raise ValueError(f"block {lblock} already cached")
        if self.free_slots < 1:
            raise RuntimeError("no free slot; evict first")
        self._entries[lblock] = CacheEntry(BlockState.CLEAN)
        if self.probe is not None:
            self.probe.on_cache_op(self, "insert_clean", lblock)

    def write(self, lblock: int) -> bool:
        """Record a write to *lblock*; True on hit.

        On a hit to a CLEAN block the old contents are retained when
        ``track_old`` (one extra slot — the caller must have ensured
        room via :meth:`free_slots`).  On a miss the block is inserted
        DIRTY with no old copy (its old contents were never read).
        """
        entry = self._entries.get(lblock)
        if entry is not None:
            self._entries.move_to_end(lblock)
            if entry.state is BlockState.CLEAN:
                entry.state = BlockState.DIRTY
                self._dirty.add(lblock)
                if self.track_old:
                    if self.free_slots < 1:
                        raise RuntimeError("no slot for old copy; evict first")
                    entry.has_old = True
                    self._old_copies += 1
            elif entry.destaging:
                entry.redirtied = True
            if self.probe is not None:
                self.probe.on_cache_op(self, "write", lblock)
            return True
        if self.free_slots < 1:
            raise RuntimeError("no free slot; evict first")
        self._entries[lblock] = CacheEntry(BlockState.DIRTY)
        self._dirty.add(lblock)
        if self.probe is not None:
            self.probe.on_cache_op(self, "write", lblock)
        return False

    def lru_block(self) -> Optional[tuple[int, CacheEntry]]:
        """The block at the head of the LRU chain (eviction candidate)."""
        if not self._entries:
            return None
        lblock = next(iter(self._entries))
        return lblock, self._entries[lblock]

    def eviction_candidate(self) -> Optional[tuple[int, CacheEntry]]:
        """Oldest block with no destage in flight (may be dirty — the
        caller then performs a synchronous writeback before evicting)."""
        for lblock, entry in self._entries.items():
            if not entry.destaging:
                return lblock, entry
        return None

    def evict(self, lblock: int) -> None:
        """Remove a CLEAN, non-destaging block."""
        entry = self._entries.get(lblock)
        if entry is None:
            raise KeyError(lblock)
        if entry.state is not BlockState.CLEAN:
            raise RuntimeError(f"cannot evict dirty block {lblock}")
        if entry.destaging:
            raise RuntimeError(f"cannot evict block {lblock} mid-destage")
        if entry.has_old:  # pragma: no cover - clean blocks never hold old
            self._old_copies -= 1
        del self._entries[lblock]
        self.evictions += 1
        if self.probe is not None:
            self.probe.on_cache_op(self, "evict", lblock)

    # -- destage bookkeeping ---------------------------------------------------------
    def begin_destage(self, lblock: int) -> CacheEntry:
        """Mark a dirty block as having an in-flight destage write."""
        entry = self._entries[lblock]
        if entry.state is not BlockState.DIRTY:
            raise RuntimeError(f"block {lblock} is not dirty")
        if entry.destaging:
            raise RuntimeError(f"block {lblock} already destaging")
        entry.destaging = True
        entry.redirtied = False
        if self.probe is not None:
            self.probe.on_cache_op(self, "begin_destage", lblock)
        return entry

    def finish_destage(self, lblock: int) -> None:
        """Complete a destage: block becomes CLEAN unless re-dirtied;
        the old copy is dropped either way (disk now holds this version)."""
        entry = self._entries.get(lblock)
        if entry is None:  # pragma: no cover - defensive
            return
        entry.destaging = False
        if entry.has_old:
            entry.has_old = False
            self._old_copies -= 1
        if entry.redirtied:
            entry.redirtied = False
            if self.track_old:
                # The destaged version is now the on-disk ("old") version
                # of the still-dirty block; retaining it costs a slot only
                # if one is free — otherwise the destage of the new
                # version will re-read old data from disk.
                if self.free_slots >= 1:
                    entry.has_old = True
                    self._old_copies += 1
        else:
            entry.state = BlockState.CLEAN
            self._dirty.discard(lblock)
        if self.probe is not None:
            self.probe.on_cache_op(self, "finish_destage", lblock)

    def dirty_blocks(self, include_destaging: bool = False) -> list[int]:
        """Dirty block numbers (unordered; destage sorts physically)."""
        if include_destaging:
            return list(self._dirty)
        return [b for b in self._dirty if not self._entries[b].destaging]

    @property
    def dirty_count(self) -> int:
        """Number of dirty blocks (including in-flight destages)."""
        return len(self._dirty)

    def oldest_dirty(self, k: int) -> list[int]:
        """Up to *k* dirty, non-destaging blocks nearest the LRU head.

        Used by the decoupled destage policy, which writes back the
        blocks most at risk of being replaced while dirty.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        out: list[int] = []
        remaining = len(self._dirty)
        for lblock, entry in self._entries.items():
            if not remaining:
                break
            if entry.state is BlockState.DIRTY:
                remaining -= 1
                if not entry.destaging:
                    out.append(lblock)
                    if len(out) == k:
                        break
        return out

    def iter_blocks(self) -> Iterator[tuple[int, CacheEntry]]:
        """All resident blocks in LRU order."""
        return iter(self._entries.items())

    # -- ratios ----------------------------------------------------------------
    @property
    def read_hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    @property
    def write_hit_ratio(self) -> float:
        total = self.write_hits + self.write_misses
        return self.write_hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<LRUCache {self.occupancy}/{self.capacity} "
            f"(old={self._old_copies}, reserved={self._reserved})>"
        )
