"""Controller non-volatile cache.

One cache per array (§3.4): LRU-managed 4 KB blocks in non-volatile
memory.  Read hits cost only channel time; writes complete into the
cache and a background destage process writes dirty blocks back in
grouped, progressively-scheduled, low-priority disk accesses.  Parity
organizations additionally retain the *old* contents of dirtied blocks
so that destage avoids the old-data read; RAID4 with parity caching
buffers parity deltas in the same cache and spools them to the dedicated
parity disk in SCAN order.
"""

from repro.cache.lru import BlockState, CacheEntry, LRUCache
from repro.cache.destage import DestageRun, plan_destage_runs
from repro.cache.paritycache import ParityCacheQueue, ParityDelta
from repro.cache.fastsim import CacheHitStats, simulate_hit_ratios

__all__ = [
    "BlockState",
    "CacheEntry",
    "CacheHitStats",
    "DestageRun",
    "LRUCache",
    "ParityCacheQueue",
    "ParityDelta",
    "plan_destage_runs",
    "simulate_hit_ratios",
]
