"""Destage planning: grouping dirty blocks into efficient disk writes.

"A background destage process groups consecutive blocks and writes them
back to disk in an asynchronous fashion... The destage process turns
small random synchronous writes into large sequential asynchronous
writes" (§3.4).  :func:`plan_destage_runs` snapshots the cache's dirty
blocks, maps them through the array layout, and coalesces physically
adjacent blocks into runs; the controller then issues the runs spread
progressively over the destage period at background priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.lru import BlockState, LRUCache
from repro.layout.common import Layout

__all__ = ["DestageRun", "plan_destage_runs"]


@dataclass
class DestageRun:
    """One contiguous destage write on one disk.

    ``lblocks`` are the logical blocks covered (physically consecutive);
    ``all_old_cached`` tells the controller whether the old contents of
    *every* block are in the cache — if so, a parity organization can
    write the data directly instead of a read-modify-write.
    """

    disk: int
    start: int
    lblocks: list[int] = field(default_factory=list)
    all_old_cached: bool = True

    @property
    def nblocks(self) -> int:
        return len(self.lblocks)

    @property
    def end(self) -> int:
        return self.start + self.nblocks


def plan_destage_runs(
    cache: LRUCache,
    layout: Layout,
    max_blocks: int | None = None,
    blocks: list[int] | None = None,
) -> list[DestageRun]:
    """Snapshot dirty blocks and coalesce them into per-disk runs.

    Blocks already being destaged are skipped.  The caller must invoke
    :meth:`LRUCache.begin_destage` on each planned block (done here) and
    :meth:`LRUCache.finish_destage` when its run's write completes.

    Parameters
    ----------
    max_blocks:
        Optional cap on blocks planned in one cycle, bounding the burst a
        single destage cycle can create.
    blocks:
        Destage only these blocks (already-clean or in-flight entries are
        skipped); ``None`` plans every dirty block.
    """
    if blocks is None:
        dirty = cache.dirty_blocks()
    else:
        dirty = [
            b
            for b in blocks
            if (e := cache.get(b)) is not None
            and e.state is BlockState.DIRTY
            and not e.destaging
        ]
    if max_blocks is not None:
        dirty = dirty[:max_blocks]
    if not dirty:
        return []

    placed = []
    for lblock in dirty:
        addr = layout.map_block(lblock)
        entry = cache.get(lblock)
        assert entry is not None
        placed.append((addr.disk, addr.block, lblock, entry.has_old))
    placed.sort()

    runs: list[DestageRun] = []
    for disk, pblock, lblock, has_old in placed:
        cache.begin_destage(lblock)
        if runs and runs[-1].disk == disk and runs[-1].end == pblock:
            runs[-1].lblocks.append(lblock)
            runs[-1].all_old_cached &= has_old
        else:
            runs.append(
                DestageRun(disk=disk, start=pblock, lblocks=[lblock], all_old_cached=has_old)
            )
    return runs
