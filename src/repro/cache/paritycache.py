"""RAID4 parity caching: buffered parity deltas spooled with SCAN.

§3.4: "when a write is performed, the parity is computed and written to
the cache instead of writing it directly to the parity disk.  The parity
blocks are sorted by cylinder number and spooled to the parity disk
using the SCAN policy.  In the case of single block accesses, what is
kept in the cache is not the actual parity but the xor of the old and
new data... In the case of full stripe writes, the actual parity is
computed and held in the cache and then written to the parity disk
without reading the old parity."

Deltas occupy cache slots (reserved through the shared
:class:`~repro.cache.lru.LRUCache`); when the cache is full, the caller
must wait for a slot — the back-pressure path the paper analyses in
§4.4.3.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from repro.cache.lru import LRUCache

__all__ = ["ParityDelta", "ParityCacheQueue"]


@dataclass
class ParityDelta:
    """A pending update to one parity block on the dedicated disk.

    ``full`` means the actual parity is cached (full-stripe write) and
    can be written without reading the old parity; otherwise the cache
    holds an XOR delta and the spooler must read-modify-write.
    """

    pblock: int
    full: bool = False


class ParityCacheQueue:
    """Pending parity updates for a RAID4 array, kept in SCAN order.

    Parameters
    ----------
    cache:
        The array's NV cache; each distinct pending parity block reserves
        one slot.
    """

    def __init__(self, cache: LRUCache) -> None:
        self.cache = cache
        self._by_block: dict[int, ParityDelta] = {}
        self._sorted: list[int] = []
        self.merged = 0
        self.added = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._by_block)

    def __contains__(self, pblock: int) -> bool:
        return pblock in self._by_block

    def add(self, pblock: int, full: bool = False) -> bool:
        """Buffer a parity update; False if the cache has no free slot.

        Updates to an already-pending parity block merge (XOR of deltas,
        or replacement by a full parity) without consuming a new slot.
        """
        existing = self._by_block.get(pblock)
        if existing is not None:
            existing.full = existing.full or full
            self.merged += 1
            return True
        if not self.cache.reserve_slots(1):
            self.rejected += 1
            return False
        delta = ParityDelta(pblock, full)
        self._by_block[pblock] = delta
        bisect.insort(self._sorted, pblock)
        self.added += 1
        return True

    def pop_scan(self, position: int, ascending: bool) -> Optional[tuple[ParityDelta, bool]]:
        """Next delta in SCAN order from *position*.

        Returns ``(delta, new_direction)`` — the elevator continues in
        its direction until no blocks remain ahead, then reverses.  The
        delta's cache slot stays reserved; the spooler releases it (via
        :meth:`LRUCache.release_slots`) once the parity write completes.
        """
        if not self._sorted:
            return None
        if ascending:
            i = bisect.bisect_left(self._sorted, position)
            if i == len(self._sorted):
                ascending = False
                i = len(self._sorted) - 1
        else:
            i = bisect.bisect_right(self._sorted, position) - 1
            if i < 0:
                ascending = True
                i = 0
        pblock = self._sorted.pop(i)
        delta = self._by_block.pop(pblock)
        return delta, ascending

    def pop_scan_run(
        self, position: int, ascending: bool, max_blocks: int = 16
    ) -> Optional[tuple[list[ParityDelta], bool]]:
        """Pop a *contiguous* run of deltas in SCAN order.

        Starting from the SCAN-selected delta, physically adjacent pending
        deltas with the same ``full`` flag are batched so the spooler can
        write them in one disk access.  Slots stay reserved until the
        caller releases them.
        """
        first = self.pop_scan(position, ascending)
        if first is None:
            return None
        delta, direction = first
        run = [delta]
        while len(run) < max_blocks:
            nxt = self._by_block.get(run[-1].pblock + 1)
            if nxt is None or nxt.full != delta.full:
                break
            i = bisect.bisect_left(self._sorted, nxt.pblock)
            del self._sorted[i]
            del self._by_block[nxt.pblock]
            run.append(nxt)
        return run, direction

    def peek_all(self) -> list[int]:
        """Pending parity block numbers in ascending order."""
        return list(self._sorted)
