"""Figures 6 and 7 benchmarks: disk access distributions."""

import numpy as np

from repro.experiments.fig06_07_skew import run_fig6, run_fig7


def test_fig06_skew_base(benchmark):
    results = benchmark.pedantic(run_fig6, args=(0.3,), iterations=1, rounds=1)
    counts = np.array(results[0].series[0].ys)
    print(results[0].notes)
    assert len(counts) == 130
    # Strong, visible skew in the Base organization.
    assert counts.max() > 2 * np.median(counts)


def test_fig07_skew_raid5(benchmark):
    results = benchmark.pedantic(run_fig7, args=(0.3,), iterations=1, rounds=1)
    counts = np.array(results[0].series[0].ys)
    print(results[0].notes)
    assert len(counts) == 143  # 13 arrays x 11 disks
    # RAID5 smooths the within-array skew dramatically (Fig. 7 vs 6):
    # the run_fig7 notes carry both CVs for comparison.
    base6 = np.array(run_fig6(0.3)[0].series[0].ys)
    assert counts.std() / counts.mean() < 0.6 * (base6.std() / base6.mean())
