"""Figures 10 and 18 benchmarks: trace-speed sweeps."""

from repro.experiments.fig10_trace_speed import run as run_fig10
from repro.experiments.fig17_19_parity_cache_params import run_fig18


def test_fig10_trace_speed_uncached(bench_experiment):
    results = bench_experiment(run_fig10, scale=0.06)
    assert len(results) == 2
    for panel in results:
        for series in panel.series:
            # More load, no faster responses: each curve nondecreasing
            # from 0.5x to 2x within noise.
            assert series.ys[-1] >= series.ys[0] * 0.9


def test_fig18_trace_speed_parity_cache(bench_experiment):
    results = bench_experiment(run_fig18, scale=0.06)
    assert len(results) == 2
    for panel in results:
        assert {s.label for s in panel.series} == {"RAID5", "RAID4-PC"}
