"""Figures 11 and 15 benchmarks: hit-ratio curves."""

from repro.experiments.fig11_hit_ratios import run as run_fig11
from repro.experiments.fig15_16_parity_cache import run_fig15


def test_fig11_hit_ratios(bench_experiment):
    results = bench_experiment(run_fig11, scale=0.1)
    assert len(results) == 2
    for panel in results:
        for series in panel.series:
            # Hit ratios are valid and nondecreasing in cache size.
            assert all(0.0 <= y <= 1.0 for y in series.ys)
            assert all(b >= a - 0.02 for a, b in zip(series.ys, series.ys[1:]))
        # Write hit ratio above read hit ratio (§4.3).
        read = panel.series_by_label("read (parity orgs)")
        write = panel.series_by_label("write (parity orgs)")
        assert write.ys[-1] > read.ys[-1]


def test_fig15_parity_cache_hit_ratios(bench_experiment):
    results = bench_experiment(run_fig15, scale=0.1)
    assert len(results) == 2
    for panel in results:
        r5 = panel.series_by_label("read RAID5")
        r4 = panel.series_by_label("read RAID4-PC")
        # Buffered parity can only cost hit ratio, never gain it.
        assert all(y4 <= y5 + 0.02 for y4, y5 in zip(r4.ys, r5.ys))
