"""Observability overhead: traced/metered runs vs the plain hot path.

Times the reference RAID5 workload with and without instrumentation and
enforces the two guarantees the opt-in design makes: instrumented runs
are bit-identical to plain ones (result fingerprints match) and the
slowdown stays within the documented budget.  The same guard runs in CI
as ``python -m repro.obs overhead --check``.
"""

from repro.obs import overhead
from repro.sim import run_trace


def test_plain_run_speed(benchmark):
    """Baseline: the un-instrumented hot path."""
    config, workload = overhead.reference_run_args(n_requests=600)
    result = benchmark(lambda: run_trace(config, workload))
    assert result.response.count > 0


def test_traced_run_speed(benchmark):
    """Same run with tracing and metrics on."""
    config, workload = overhead.reference_run_args(n_requests=600)
    result = benchmark(lambda: run_trace(config, workload, trace=True, metrics=True))
    assert result.trace is not None
    assert len(result.trace.spans) > 0


def test_overhead_guard():
    """The CI guard: non-perturbation plus bounded slowdown."""
    report = overhead.overhead_report(n_requests=600, repeats=2)
    problems = overhead.check(report)
    assert problems == [], "\n".join(problems)
