"""Benchmarks for the extension experiments (ablations beyond the paper)."""

from repro.experiments.extensions import (
    run_destage_policies,
    run_parity_grain,
    run_rebuild,
    run_scheduler,
    run_spindle_sync,
)


def test_ext_rebuild(bench_experiment):
    results = bench_experiment(run_rebuild, scale=0.05)
    panel = results[0]
    healthy = panel.series_by_label("healthy rt")
    degraded = panel.series_by_label("during rebuild rt")
    # Rebuild traffic and degraded reads cost response time.
    assert sum(degraded.ys) > sum(healthy.ys)


def test_ext_destage_policies(bench_experiment):
    results = bench_experiment(run_destage_policies, scale=0.08)
    for panel in results:
        labels = {s.label for s in panel.series}
        assert labels == {"periodic", "lru_demand", "decoupled"}


def test_ext_parity_grain(bench_experiment):
    results = bench_experiment(run_parity_grain, scale=0.08)
    assert len(results) == 2
    for panel in results:
        assert "RAID5 su=1" in panel.series[0].xs


def test_ext_spindle_sync(bench_experiment):
    results = bench_experiment(run_spindle_sync, scale=0.08)
    for panel in results:
        for s in panel.series:
            # Synchronization is a second-order effect, never a 2x swing.
            assert 0.5 < s.ys[0] / s.ys[1] < 2.0


def test_ext_scheduler(bench_experiment):
    results = bench_experiment(run_scheduler, scale=0.08)
    for panel in results:
        base = panel.series_by_label("base")
        # SSTF cannot be drastically worse than FCFS.
        assert base.ys[1] < base.ys[0] * 1.5
