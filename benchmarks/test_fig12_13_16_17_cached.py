"""Figures 12, 13, 16 and 17 benchmarks: cached-organization sweeps."""

from repro.experiments.fig12_cache_size import run as run_fig12
from repro.experiments.fig13_cached_array_size import run as run_fig13
from repro.experiments.fig15_16_parity_cache import run_fig16
from repro.experiments.fig17_19_parity_cache_params import run_fig17


def test_fig12_cache_size(bench_experiment):
    results = bench_experiment(run_fig12, scale=0.1)
    assert len(results) == 2
    for panel in results:
        base = panel.series_by_label("Base")
        mirror = panel.series_by_label("Mirror")
        # Mirrors stay ahead of Base in the cached systems too (§4.3.1).
        assert all(m <= b for m, b in zip(mirror.ys, base.ys))


def test_fig13_cached_array_size(bench_experiment):
    results = bench_experiment(run_fig13, scale=0.1)
    assert len(results) == 2
    for panel in results:
        assert panel.series[0].xs == [5, 10, 15]


def test_fig16_parity_cache_size(bench_experiment):
    results = bench_experiment(run_fig16, scale=0.1)
    assert len(results) == 2
    trace2_panel = results[1]
    r5 = trace2_panel.series_by_label("RAID5")
    r4 = trace2_panel.series_by_label("RAID4-PC")
    # §4.4.1: parity caching wins clearly on the write-heavy trace.
    assert sum(r4.ys) < sum(r5.ys)


def test_fig17_parity_cache_array_size(bench_experiment):
    results = bench_experiment(run_fig17, scale=0.08)
    assert len(results) == 2
    for panel in results:
        assert panel.series[0].xs == [5, 10, 20]
