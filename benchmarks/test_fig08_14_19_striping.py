"""Figures 8, 14 and 19 benchmarks: striping unit sweeps."""

from repro.experiments.fig08_striping_unit import run as run_fig8
from repro.experiments.fig14_cached_striping import run as run_fig14
from repro.experiments.fig17_19_parity_cache_params import run_fig19


def test_fig08_striping_unit_uncached(bench_experiment):
    results = bench_experiment(run_fig8, scale=0.15)
    assert len(results) == 2
    for panel in results:
        assert panel.series[0].xs == [1, 2, 4, 8, 16, 32, 64]
        assert all(y > 0 for y in panel.series[0].ys)


def test_fig14_striping_unit_cached(bench_experiment):
    results = bench_experiment(run_fig14, scale=0.15)
    assert len(results) == 2
    for panel in results:
        assert all(y > 0 for y in panel.series[0].ys)


def test_fig19_striping_unit_parity_cache(bench_experiment):
    results = bench_experiment(run_fig19, scale=0.1)
    assert len(results) == 2
    for panel in results:
        assert {s.label for s in panel.series} == {"RAID5", "RAID4-PC"}
