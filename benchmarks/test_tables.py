"""Benchmarks regenerating Tables 1-4."""

from repro.experiments.tables import table1, table2, table3, table4


def test_table1_disk_model(bench_experiment):
    results = bench_experiment(table1, scale=1.0)
    model = results[0].series_by_label("model")
    paper = results[0].series_by_label("paper")
    # Seek calibration must match Table 1 exactly.
    for name, got, want in zip(model.xs, model.ys, paper.ys):
        if name in ("average_seek_ms", "maximal_seek_ms"):
            assert abs(got - want) < 1e-6


def test_table2_traces(bench_experiment):
    results = bench_experiment(table2, scale=0.25)
    for result in results:
        measured = result.series_by_label("measured")
        paper = result.series_by_label("paper")
        wf_i = measured.xs.index("write_fraction")
        assert abs(measured.ys[wf_i] - paper.ys[wf_i]) < 0.03


def test_table3_organizations(bench_experiment):
    results = bench_experiment(table3, scale=0.4)
    rts = results[0].series_by_label("response_ms")
    assert len(rts.xs) == 9  # 4 uncached + 5 cached cells
    assert all(y > 0 for y in rts.ys)


def test_table4_defaults(bench_experiment):
    results = bench_experiment(table4, scale=1.0)
    defaults = dict(zip(results[0].series[0].xs, results[0].series[0].ys))
    assert defaults["N"] == 10
    assert defaults["cache_mb"] == 16
