"""Shared benchmark configuration.

Each figure/table benchmark runs its experiment driver once at a small
scale (the sweep structure is identical to the full run; only the trace
is shorter) and prints the regenerated series, so `pytest benchmarks/
--benchmark-only` both times the harness and shows the paper-shaped
output rows.
"""

import pytest

#: Scale used by the figure benchmarks (multiplies each experiment's
#: default trace size).  Full-fidelity numbers come from
#: `python -m repro.experiments <id>` runs recorded in EXPERIMENTS.md.
BENCH_SCALE = 0.08


def run_and_print(benchmark, run_fn, scale=BENCH_SCALE):
    """Benchmark one experiment driver and print its tables."""
    results = benchmark.pedantic(run_fn, args=(scale,), iterations=1, rounds=1)
    for result in results:
        print()
        print(result.table_str())
    return results


@pytest.fixture
def bench_experiment(benchmark):
    def _run(run_fn, scale=BENCH_SCALE):
        return run_and_print(benchmark, run_fn, scale)

    return _run
