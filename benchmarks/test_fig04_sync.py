"""Figure 4 benchmark: synchronization policies vs array size."""

from repro.experiments.fig04_sync import run


def test_fig04_sync_policies(bench_experiment):
    results = bench_experiment(run, scale=0.05)
    # Four panels: {RAID5, ParStripe} x {Trace 1, Trace 2}.
    assert len(results) == 4
    for panel in results:
        assert {s.label for s in panel.series} == {"SI", "RF", "RF/PR", "DF", "DF/PR"}
        # SI must not beat the best policy anywhere (it holds the
        # parity disk spinning).
        si = panel.series_by_label("SI")
        best = [min(s.ys[i] for s in panel.series) for i in range(len(si.xs))]
        assert all(si.ys[i] >= best[i] - 1e-9 for i in range(len(si.xs)))
