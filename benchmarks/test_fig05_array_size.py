"""Figure 5 benchmark: response time vs array size, uncached."""

from repro.experiments.fig05_array_size import run


def test_fig05_array_size(bench_experiment):
    results = bench_experiment(run)
    assert len(results) == 2
    for panel in results:
        assert {s.label for s in panel.series} == {
            "Base",
            "Mirror",
            "RAID5",
            "ParStripe",
        }
    # Mirror below Base at every point of both panels (§4.2).
    for panel in results:
        base = panel.series_by_label("Base")
        mirror = panel.series_by_label("Mirror")
        assert all(m < b for m, b in zip(mirror.ys, base.ys))
