"""Campaign and kernel benchmark harness.

Times a small experiment campaign serially and with ``--jobs N``
workers (verifying the outputs are identical along the way), plus a set
of kernel microbenchmarks covering the DES hot path: event throughput,
seek-time LUT vs. closed-form, synthetic trace generation, the
request-plan cache (on vs off, with an identical-results check), and
the streaming trace pipeline (a million-request run at O(chunk)
resident trace memory).

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py \
        --scale 0.02 --jobs 2 --out BENCH_10.json

Not collected by pytest (no ``test_`` prefix) — this is a standalone
script whose JSON output is committed as ``BENCH_10.json`` (earlier
revisions: ``BENCH_5.json``) and uploaded as a CI artifact at a tiny
scale.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time


DEFAULT_EXPERIMENTS = ["fig8", "fig6"]


def _campaign_dict(campaign) -> dict:
    return {
        exp_id: [r.to_dict() for r in results]
        for exp_id, results in campaign.items()
    }


def bench_campaign(experiments, scale, jobs):
    """Serial vs parallel campaign wall-clock, with an equality check."""
    from repro.experiments.parallel import run_campaign
    from repro.experiments.trace_cache import clear_memory_cache

    # Warm the trace cache once so both runs measure simulation, not
    # trace generation (matching a realistic repeated-campaign use).
    run_campaign(experiments, scale, jobs=1)

    clear_memory_cache()
    t0 = time.perf_counter()
    serial = run_campaign(experiments, scale, jobs=1)
    serial_s = time.perf_counter() - t0

    clear_memory_cache()
    t0 = time.perf_counter()
    parallel = run_campaign(experiments, scale, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    identical = _campaign_dict(serial) == _campaign_dict(parallel)
    if not identical:
        print("ERROR: parallel output differs from serial", file=sys.stderr)
    return {
        "experiments": experiments,
        "scale": scale,
        "jobs": jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "outputs_identical": identical,
    }


def bench_event_throughput(n_events=200_000, repeats=5):
    """Schedule/step throughput of the bare DES kernel.

    Reports the fastest of ``repeats`` runs with the garbage collector
    paused during timing (the same noise-floor methodology as
    :mod:`timeit`): a single draw on a shared host mixes scheduler
    preemption and interpreter warm-up into the number.
    """
    import gc

    from repro.des import Environment

    def chain(env, remaining):
        while remaining:
            remaining -= 1
            yield env.timeout(1.0)

    per = n_events // 8
    best = float("inf")
    for _ in range(repeats):
        env = Environment()
        # 8 interleaved timeout chains: exercises heap ordering, not
        # just FIFO pop.
        for _ in range(8):
            env.process(chain(env, per))
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            env.run()
            best = min(best, time.perf_counter() - t0)
        finally:
            if gc_was_enabled:
                gc.enable()
    return {
        "events": per * 8,
        "repeats": repeats,
        "elapsed_s": round(best, 4),
        "events_per_s": round(per * 8 / best),
    }


def bench_seek(n=500_000):
    """LUT-backed scalar seek_time vs the closed-form curve."""
    from repro.disk.seek import SeekModel

    model = SeekModel.fit()
    distances = [(i * 37) % model.cylinders for i in range(n)]

    t0 = time.perf_counter()
    for d in distances:
        model.seek_time(d)
    lut_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for d in distances:
        model._curve(d)
    curve_s = time.perf_counter() - t0

    return {
        "calls": n,
        "lut_s": round(lut_s, 4),
        "closed_form_s": round(curve_s, 4),
        "lut_speedup": round(curve_s / lut_s, 3) if lut_s else None,
    }


def bench_trace_gen(scale=0.01):
    """Synthetic trace generation throughput (the vectorized loop)."""
    from repro.trace.synthetic import generate_trace, trace1_config

    cfg = trace1_config(scale=scale)
    t0 = time.perf_counter()
    trace = generate_trace(cfg)
    elapsed = time.perf_counter() - t0
    return {
        "requests": len(trace),
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(len(trace) / elapsed),
    }


def _result_fingerprint(result) -> tuple:
    """Comparable digest of a RunResult (ndarrays defeat dataclass ==)."""
    return (
        result.simulated_ms,
        result.events,
        result.response.count,
        result.response.mean,
        result.read_response.mean,
        result.write_response.mean,
        tuple(int(x) for x in result.per_disk_accesses),
    )


def bench_plan_cache(scale=1.0):
    """run_trace wall-clock with the request-plan cache on vs off.

    RAID5 small writes exercise the richest plans (RMW groups with
    read/parity runs), so that's where memoizing the logical→physical
    decomposition pays the most.  The off-run doubles as a correctness
    gate: both runs must produce bit-identical results.
    """
    from repro.sim import SystemConfig, run_trace
    from repro.sim.config import Organization
    from repro.trace.synthetic import generate_trace, trace2_config

    trace = generate_trace(trace2_config(scale=scale))
    config = SystemConfig(
        organization=Organization.RAID5,
        blocks_per_disk=trace.blocks_per_disk,
        n=10,
    )

    from dataclasses import replace

    run_trace(config, trace)  # warm (imports, seek LUT, trace pages)

    t0 = time.perf_counter()
    on = run_trace(config, trace)
    on_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    off = run_trace(replace(config, plan_cache=False), trace)
    off_s = time.perf_counter() - t0

    identical = _result_fingerprint(on) == _result_fingerprint(off)
    if not identical:
        print("ERROR: plan-cache run differs from uncached run", file=sys.stderr)
    hits = sum(a.plan_hits for a in on.arrays)
    misses = sum(a.plan_misses for a in on.arrays)
    return {
        "requests": len(trace),
        "organization": "raid5",
        "cached_s": round(on_s, 4),
        "uncached_s": round(off_s, 4),
        "speedup": round(off_s / on_s, 3) if on_s else None,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else None,
        "outputs_identical": identical,
    }


def bench_streaming(n_requests=1_000_000, chunk_requests=65536):
    """Million-request run fed from a streaming trace source.

    Measures end-to-end simulation throughput plus the tracemalloc peak
    while draining the generator — the evidence that trace memory stays
    O(chunk) instead of O(n_requests).  ``bounded`` asserts the peak is
    under an absolute budget proportional to the chunk size — 512 bytes
    per chunked request covers the generator's scratch columns plus the
    address loop's Python-list expansion (~32 bytes per boxed float) —
    and independent of ``n_requests``: a materialized million-request
    run would hold the full record array (and its list expansions) at
    once and keeps growing with the trace.
    """
    import tracemalloc

    from repro.sim import SystemConfig, run_trace
    from repro.sim.config import Organization
    from repro.trace.record import TRACE_DTYPE
    from repro.trace.synthetic import TraceStream, trace2_config

    cfg = trace2_config(scale=n_requests / 69_539)  # rate-preserving
    stream = TraceStream(cfg, chunk_requests=chunk_requests)
    full_trace_mb = len(stream) * TRACE_DTYPE.itemsize / 1e6

    tracemalloc.start()
    for _ in stream.chunks():
        pass
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_trace_mb = peak / 1e6
    budget_mb = 512 * chunk_requests / 1e6
    bounded = peak_trace_mb < budget_mb

    config = SystemConfig(
        organization=Organization.BASE,
        blocks_per_disk=stream.blocks_per_disk,
        n=10,
    )
    t0 = time.perf_counter()
    result = run_trace(config, stream, keep_samples=False)
    elapsed = time.perf_counter() - t0

    return {
        "requests": len(stream),
        "chunk_requests": chunk_requests,
        "organization": "base",
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(len(stream) / elapsed),
        "events": result.events,
        "events_per_s": round(result.events / elapsed),
        "peak_trace_mb": round(peak_trace_mb, 3),
        "budget_mb": round(budget_mb, 3),
        "full_trace_mb": round(full_trace_mb, 3),
        "bounded": bounded,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02,
                        help="campaign trace scale (default 0.02)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="parallel worker count (default 2)")
    parser.add_argument("--experiments", nargs="*", default=DEFAULT_EXPERIMENTS,
                        help="experiment ids for the campaign benchmark")
    parser.add_argument("--out", default="BENCH_10.json",
                        help="output JSON path (default BENCH_10.json)")
    parser.add_argument("--streaming-requests", type=int, default=1_000_000,
                        help="streaming-bench request count (default 1e6; "
                             "CI smoke uses a small value)")
    parser.add_argument("--plan-cache-scale", type=float, default=1.0,
                        help="trace scale for the plan-cache benchmark "
                             "(default 1.0 = the full Trace-2 stream)")
    args = parser.parse_args(argv)

    import os

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    # The kernel microbenchmark is the most contention-sensitive number
    # on a shared host: each call is over in ~1s, so a single draw
    # rides whatever scheduling weather that second had.  Sample it at
    # the start, middle, and end of the run — minutes apart — and keep
    # the fastest draw (the same noise-floor rationale as the per-call
    # best-of-five, stretched across the run).
    report = {
        "benchmark": "campaign+kernel",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cores": cores,
    }
    draws = [bench_event_throughput()]
    report["campaign"] = bench_campaign(args.experiments, args.scale, args.jobs)
    report["seek_time"] = bench_seek()
    draws.append(bench_event_throughput())
    report["trace_generation"] = bench_trace_gen()
    report["plan_cache"] = bench_plan_cache(scale=args.plan_cache_scale)
    report["streaming"] = bench_streaming(n_requests=args.streaming_requests)
    draws.append(bench_event_throughput())
    best = min(draws, key=lambda d: d["elapsed_s"])
    best["repeats"] = sum(d["repeats"] for d in draws)
    report["event_throughput"] = best
    # Persist in the normalized repro-bench/1 schema (raw report kept
    # inside) so the file feeds straight into `python -m repro.bench
    # compare` without the legacy adapter.
    from repro.bench.schema import normalize, to_json

    with open(args.out, "w") as fh:
        json.dump(to_json(normalize(report, source=args.out)), fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    ok = (
        report["campaign"]["outputs_identical"]
        and report["plan_cache"]["outputs_identical"]
        and report["streaming"]["bounded"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
