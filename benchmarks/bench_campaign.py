"""Campaign and kernel benchmark harness.

Times a small experiment campaign serially and with ``--jobs N``
workers (verifying the outputs are identical along the way), plus a set
of kernel microbenchmarks covering the DES hot path: event throughput,
seek-time LUT vs. closed-form, and synthetic trace generation.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py \
        --scale 0.02 --jobs 2 --out BENCH_5.json

Not collected by pytest (no ``test_`` prefix) — this is a standalone
script whose JSON output is committed as ``BENCH_5.json`` and uploaded
as a CI artifact at a tiny scale.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time


DEFAULT_EXPERIMENTS = ["fig8", "fig6"]


def _campaign_dict(campaign) -> dict:
    return {
        exp_id: [r.to_dict() for r in results]
        for exp_id, results in campaign.items()
    }


def bench_campaign(experiments, scale, jobs):
    """Serial vs parallel campaign wall-clock, with an equality check."""
    from repro.experiments.parallel import run_campaign
    from repro.experiments.trace_cache import clear_memory_cache

    # Warm the trace cache once so both runs measure simulation, not
    # trace generation (matching a realistic repeated-campaign use).
    run_campaign(experiments, scale, jobs=1)

    clear_memory_cache()
    t0 = time.perf_counter()
    serial = run_campaign(experiments, scale, jobs=1)
    serial_s = time.perf_counter() - t0

    clear_memory_cache()
    t0 = time.perf_counter()
    parallel = run_campaign(experiments, scale, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    identical = _campaign_dict(serial) == _campaign_dict(parallel)
    if not identical:
        print("ERROR: parallel output differs from serial", file=sys.stderr)
    return {
        "experiments": experiments,
        "scale": scale,
        "jobs": jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "outputs_identical": identical,
    }


def bench_event_throughput(n_events=200_000):
    """Schedule/step throughput of the bare DES kernel."""
    from repro.des import Environment

    def chain(env, remaining):
        while remaining:
            remaining -= 1
            yield env.timeout(1.0)

    env = Environment()
    # 8 interleaved timeout chains: exercises heap ordering, not just
    # FIFO pop.
    per = n_events // 8
    for _ in range(8):
        env.process(chain(env, per))
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    return {
        "events": per * 8,
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(per * 8 / elapsed),
    }


def bench_seek(n=500_000):
    """LUT-backed scalar seek_time vs the closed-form curve."""
    from repro.disk.seek import SeekModel

    model = SeekModel.fit()
    distances = [(i * 37) % model.cylinders for i in range(n)]

    t0 = time.perf_counter()
    for d in distances:
        model.seek_time(d)
    lut_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for d in distances:
        model._curve(d)
    curve_s = time.perf_counter() - t0

    return {
        "calls": n,
        "lut_s": round(lut_s, 4),
        "closed_form_s": round(curve_s, 4),
        "lut_speedup": round(curve_s / lut_s, 3) if lut_s else None,
    }


def bench_trace_gen(scale=0.01):
    """Synthetic trace generation throughput (the vectorized loop)."""
    from repro.trace.synthetic import generate_trace, trace1_config

    cfg = trace1_config(scale=scale)
    t0 = time.perf_counter()
    trace = generate_trace(cfg)
    elapsed = time.perf_counter() - t0
    return {
        "requests": len(trace),
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(len(trace) / elapsed),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02,
                        help="campaign trace scale (default 0.02)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="parallel worker count (default 2)")
    parser.add_argument("--experiments", nargs="*", default=DEFAULT_EXPERIMENTS,
                        help="experiment ids for the campaign benchmark")
    parser.add_argument("--out", default="BENCH_5.json",
                        help="output JSON path (default BENCH_5.json)")
    args = parser.parse_args(argv)

    import os

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    report = {
        "benchmark": "campaign+kernel",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cores": cores,
        "campaign": bench_campaign(args.experiments, args.scale, args.jobs),
        "event_throughput": bench_event_throughput(),
        "seek_time": bench_seek(),
        "trace_generation": bench_trace_gen(),
    }
    # Persist in the normalized repro-bench/1 schema (raw report kept
    # inside) so the file feeds straight into `python -m repro.bench
    # compare` without the legacy adapter.
    from repro.bench.schema import normalize, to_json

    with open(args.out, "w") as fh:
        json.dump(to_json(normalize(report, source=args.out)), fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if report["campaign"]["outputs_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
