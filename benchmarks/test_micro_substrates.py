"""Micro-benchmarks of the substrates.

These time the hot paths that bound the full simulations' wall-clock:
DES event throughput, disk service, cache operations, layout mapping
and trace generation.
"""

import numpy as np

from repro.cache import LRUCache
from repro.des import Environment
from repro.disk import AccessKind, Disk, DiskGeometry, DiskRequest, SeekModel
from repro.layout import Raid5Layout
from repro.trace import SyntheticTraceConfig, generate_trace


def test_des_event_throughput(benchmark):
    """Ping-pong timeouts: raw kernel event rate."""

    def run():
        env = Environment()

        def clock(env):
            for _ in range(20_000):
                yield env.timeout(1.0)

        env.process(clock(env))
        env.run()
        return env.now

    assert benchmark(run) == 20_000.0


def test_disk_service_rate(benchmark):
    """Sequential single-block reads through the full disk model."""
    geo, sm = DiskGeometry(), SeekModel.fit()
    rng = np.random.default_rng(1)
    blocks = rng.integers(0, geo.total_blocks, size=2_000)

    def run():
        env = Environment()
        disk = Disk(env, geo, sm)

        def source(env):
            for b in blocks:
                req = disk.submit(DiskRequest(AccessKind.READ, int(b)))
                yield req.done

        env.process(source(env))
        env.run()
        return disk.completed

    assert benchmark(run) == 2_000


def test_lru_cache_ops(benchmark):
    """Mixed insert/touch/evict churn on a 4096-slot cache."""
    rng = np.random.default_rng(2)
    refs = rng.integers(0, 20_000, size=50_000)

    def run():
        cache = LRUCache(4096)
        hits = 0
        for b in refs:
            b = int(b)
            if cache.touch(b):
                hits += 1
            else:
                if cache.free_slots < 1:
                    cache.evict(cache.lru_block()[0])
                cache.insert_clean(b)
        return hits

    assert benchmark(run) > 0


def test_raid5_mapping_vectorised(benchmark):
    """Vectorised logical->physical mapping of a million blocks."""
    layout = Raid5Layout(10, 221_760, striping_unit=8)
    lblocks = np.arange(1_000_000, dtype=np.int64) % layout.logical_blocks

    def run():
        disks, pblocks = layout.map_blocks(lblocks)
        return int(disks.sum())

    assert benchmark(run) > 0


def test_trace_generation_rate(benchmark):
    """Synthetic generator throughput (requests/second)."""
    cfg = SyntheticTraceConfig(
        name="bench",
        ndisks=10,
        blocks_per_disk=221_760,
        n_requests=50_000,
        duration_ms=1e6,
        write_fraction=0.25,
        multiblock_fraction=0.05,
        multiblock_mean_extra=10.0,
        max_request_blocks=64,
        disk_zipf=1.0,
        hot_spot_fraction=0.02,
        hot_spot_weight=0.3,
        sequential_prob=0.1,
        rehit_prob=0.4,
        rehit_window=30_000,
        stack_median=5_000.0,
        stack_sigma=1.5,
        write_after_read_prob=0.5,
        recent_read_window=2_000,
        burst_rate_multiplier=10.0,
        burst_fraction=0.3,
        burst_mean_length=50.0,
        seed=3,
    )

    def run():
        return len(generate_trace(cfg))

    assert benchmark(run) == 50_000
