"""Figure 9 benchmark: Parity Striping parity placement."""

from repro.experiments.fig09_parity_placement import run


def test_fig09_parity_placement(bench_experiment):
    results = bench_experiment(run, scale=0.12)
    assert len(results) == 2
    for panel in results:
        assert {s.label for s in panel.series} == {"middle", "end"}
        assert "w>1/N rule" in panel.notes
