"""Analytic-backend benchmark: DES vs M/G/1 fast solve on sweep campaigns.

Evaluates the same campaign point lists on both backends — traces
pre-materialized through the shared cache so each side measures pure
point evaluation, the work a figure sweep actually repeats — and
records wall-clock speedup plus the per-point relative error of the
analytic means against the DES reference.  The run fails (non-zero
exit) if any point falls outside the campaign-level tolerance in
:mod:`repro.analytic.validation`.

Usage::

    PYTHONPATH=src python benchmarks/bench_analytic.py \
        --scale 1.0 --out BENCH_6.json

Not collected by pytest (no ``test_`` prefix) — the JSON output of a
full-scale run is committed as ``BENCH_6.json``; CI re-runs it at a
tiny scale and uploads the report as an artifact.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time


DEFAULT_EXPERIMENTS = ["fig5", "fig8"]


def bench_experiment(exp_id: str, scale: float) -> dict:
    from repro.analytic.validation import CAMPAIGN_TOLERANCE
    from repro.experiments.points import run_points, with_backend
    from repro.experiments.registry import get_experiment

    exp = get_experiment(exp_id)
    if exp.points is None:
        raise SystemExit(f"{exp_id} has no point decomposition")
    points = exp.points(scale)

    # Materialize every trace first so neither timed pass pays
    # generation cost (a repeated sweep hits the warm cache too).
    for point in points:
        point.spec.materialize()

    t0 = time.perf_counter()
    des = run_points(points)
    des_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    analytic = run_points(with_backend(points, "analytic"))
    analytic_s = time.perf_counter() - t0

    errors = {}
    for point in points:
        if point.kind != "sim":
            continue
        ref = des[point.key].mean_response_ms
        got = analytic[point.key].mean_response_ms
        if math.isfinite(ref) and ref > 0:
            errors[point.label()] = (got - ref) / ref
    worst_label, worst = max(
        errors.items(), key=lambda kv: abs(kv[1]), default=(None, 0.0)
    )
    return {
        "experiment": exp_id,
        "scale": scale,
        "points": len(points),
        "des_s": round(des_s, 4),
        "analytic_s": round(analytic_s, 4),
        "speedup": round(des_s / analytic_s, 1) if analytic_s else None,
        "max_rel_error": round(abs(worst), 4),
        "max_rel_error_point": worst_label,
        "mean_abs_rel_error": round(
            sum(abs(e) for e in errors.values()) / len(errors), 4
        ) if errors else None,
        "tolerance": CAMPAIGN_TOLERANCE,
        "within_tolerance": abs(worst) <= CAMPAIGN_TOLERANCE,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="campaign trace scale (default 1.0)")
    parser.add_argument("--experiments", nargs="*", default=DEFAULT_EXPERIMENTS,
                        help="sweep experiment ids to compare")
    parser.add_argument("--out", default="BENCH_6.json",
                        help="output JSON path (default BENCH_6.json)")
    args = parser.parse_args(argv)

    import os

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    campaigns = [bench_experiment(e, args.scale) for e in args.experiments]
    report = {
        "benchmark": "analytic-vs-des",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cores": cores,
        "campaigns": campaigns,
        "best_speedup": max((c["speedup"] or 0) for c in campaigns),
    }
    # Persist in the normalized repro-bench/1 schema (raw report kept
    # inside) so the file feeds straight into `python -m repro.bench
    # compare` without the legacy adapter.
    from repro.bench.schema import normalize, to_json

    with open(args.out, "w") as fh:
        json.dump(to_json(normalize(report, source=args.out)), fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    ok = all(c["within_tolerance"] for c in campaigns)
    if not ok:
        print("ERROR: analytic backend outside campaign tolerance", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
